"""Participation models: who shows up each round, and how late.

The server used to call :func:`repro.federated.sampling.sample_clients`
directly, which left no seam for availability traces, device-speed tiers or
asynchronous arrival.  A :class:`ParticipationModel` owns that decision now:
each round the server hands it a :class:`ParticipationContext` and receives
a :class:`ParticipationRound` — the sorted sampled cohort plus (optionally)
a deterministic latency draw per sampled client, which the buffered-async
aggregation mode uses to order arrivals.

Three models ship (a registry family — ``repro list participation``):

``uniform``
    The historical behaviour, bit for bit: each client sampled independently
    with probability ``sample_rate`` from the *server's* round RNG, with the
    ``min_clients`` floor.  Existing seeded histories are pinned to this
    model's exact RNG consumption (see :func:`uniform_sample`).

``churn``
    Availability sessions: a client is online for a whole
    ``session_length``-round session with probability ``availability``
    (re-drawn per ``(seed, client, session)``), and may drop out of the
    federation permanently with per-round hazard ``dropout_rate``.  Sampling
    then runs at ``sample_rate`` over the currently-available set.  All
    draws come from dedicated :mod:`repro.federated.rng` participation
    streams, never the server RNG.

``tiered``
    ``churn`` plus device-speed tiers: each client is permanently assigned a
    tier (relative speeds ``speeds``, mixture ``weights``) and every round
    draws a lognormal-jittered latency ``speed · exp(jitter · z)`` from the
    round's latency stream — deterministic per ``(seed, round, cid)``, so
    straggler order is identical on every execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.federated.rng import latency_rng, participation_rng
from repro.registry import PARTICIPATION

#: Stream domains inside the participation tag (see
#: :func:`repro.federated.rng.participation_seed_sequence`).
SAMPLING_DOMAIN = 0      #: per-round sampling mask (churn/tiered models)
AVAILABILITY_DOMAIN = 1  #: per-session availability draws
DROPOUT_DOMAIN = 2       #: run-constant permanent-dropout draws
TIER_DOMAIN = 3          #: run-constant device-tier assignment

__all__ = [
    "ParticipationContext",
    "ParticipationRound",
    "ParticipationModel",
    "UniformParticipation",
    "ChurnParticipation",
    "TieredParticipation",
    "uniform_sample",
]


@dataclass(frozen=True)
class ParticipationContext:
    """Everything a participation model may read when sampling one round."""

    num_clients: int
    seed: int
    round_idx: int
    #: The server's own RNG stream.  Only the ``uniform`` model consumes it
    #: (that consumption *is* the backward-compatibility contract); trace
    #: models draw from their tagged streams and must leave it untouched.
    rng: np.random.Generator


@dataclass(frozen=True)
class ParticipationRound:
    """One round's participation decision.

    ``sampled`` is the sorted cohort (sorted ids fix the aggregation order
    across backends, as before).  ``latencies`` aligns with ``sampled``;
    empty means "no latency model" and is treated as all-zero — arrival
    order then degenerates to slot order.
    """

    sampled: np.ndarray
    latencies: tuple[float, ...] = ()


def uniform_sample(
    num_clients: int,
    sample_rate: float,
    rng: np.random.Generator,
    min_clients: int = 2,
) -> np.ndarray:
    """Sample a subset of client ids for one round (the paper's iid-q model).

    Each client is sampled independently with probability ``sample_rate``
    (q = 1% at paper scale); ``min_clients`` keeps small simulations
    meaningful.  The returned ids are sorted, fixing the round's aggregation
    order across backends.

    RNG-consumption contract (pinned by
    ``tests/federated/test_participation.py::TestServerStreamStability``):
    exactly one ``rng.random(num_clients)`` draw per round, plus one
    ``rng.choice(num_clients, size=floor, replace=False)`` top-up draw *only
    when* the independent draws fell short of the floor.  The top-up is
    deliberately conditional — making it unconditional would shift the
    server stream of every existing seeded history — so refactors must keep
    this exact consumption pattern or break bit-compatibility loudly.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    mask = rng.random(num_clients) < sample_rate
    selected = np.flatnonzero(mask)
    if selected.size < min(min_clients, num_clients):
        extra = rng.choice(num_clients, size=min(min_clients, num_clients), replace=False)
        selected = np.union1d(selected, extra)
    return selected.astype(np.int64)


class ParticipationModel:
    """Strategy interface deciding each round's participating cohort."""

    name = "participation"

    def sample_round(self, ctx: ParticipationContext) -> ParticipationRound:
        raise NotImplementedError


@PARTICIPATION.register("uniform")
class UniformParticipation(ParticipationModel):
    """The historical uniform-q sampler, behind the new API.

    Consumes the server's round RNG through :func:`uniform_sample` exactly
    as ``FederatedServer`` always did, so a run configured with
    ``participation="uniform"`` (or with the deprecated ``sample_rate``
    scalars, which build this model) reproduces existing histories
    bit-identically per seed.
    """

    name = "uniform"

    def __init__(self, sample_rate: float = 0.2, min_clients: int = 4) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if min_clients < 1:
            raise ValueError("min_clients must be at least 1")
        self.sample_rate = float(sample_rate)
        self.min_clients = int(min_clients)

    def sample_round(self, ctx: ParticipationContext) -> ParticipationRound:
        sampled = uniform_sample(
            ctx.num_clients, self.sample_rate, ctx.rng, min_clients=self.min_clients
        )
        return ParticipationRound(sampled=sampled)


@PARTICIPATION.register("churn")
class ChurnParticipation(ParticipationModel):
    """Availability sessions + permanent dropout over an eligible pool.

    A client's availability is re-drawn once per ``session_length``-round
    session from its ``(seed, session)`` stream; with probability
    ``dropout_rate`` per round (geometric, drawn once per client from the
    run-constant dropout stream) a client leaves the federation for good.
    Sampling runs at ``sample_rate`` over the available pool, topping up to
    ``min_clients`` from that pool when the independent draws fall short.
    A round with an empty available pool raises ``RuntimeError`` — silently
    training on nobody would corrupt the history.

    All randomness comes from participation-tagged streams; the server's
    round RNG is never consumed, so adding churn to a scenario cannot shift
    any other stream of the run.
    """

    name = "churn"

    def __init__(
        self,
        sample_rate: float = 0.2,
        min_clients: int = 4,
        availability: float = 0.8,
        session_length: int = 4,
        dropout_rate: float = 0.0,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if min_clients < 1:
            raise ValueError("min_clients must be at least 1")
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if session_length < 1:
            raise ValueError("session_length must be at least 1")
        if not 0.0 <= dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        self.sample_rate = float(sample_rate)
        self.min_clients = int(min_clients)
        self.availability = float(availability)
        self.session_length = int(session_length)
        self.dropout_rate = float(dropout_rate)
        self._dropout_rounds: np.ndarray | None = None

    def _dropout_round(self, ctx: ParticipationContext) -> np.ndarray:
        """Per-client round index at which the client permanently drops out.

        Geometric with per-round hazard ``dropout_rate``; drawn once per run
        from the constant dropout stream and cached (re-deriving would give
        the same vector — the cache only saves work).
        """
        if self._dropout_rounds is None or self._dropout_rounds.size != ctx.num_clients:
            if self.dropout_rate <= 0.0:
                self._dropout_rounds = np.full(ctx.num_clients, np.iinfo(np.int64).max)
            else:
                rng = participation_rng(ctx.seed, 0, DROPOUT_DOMAIN)
                self._dropout_rounds = rng.geometric(
                    self.dropout_rate, size=ctx.num_clients
                ).astype(np.int64)
        return self._dropout_rounds

    def available_clients(self, ctx: ParticipationContext) -> np.ndarray:
        """Sorted ids of clients online in this round's session and not dropped."""
        session = ctx.round_idx // self.session_length
        rng = participation_rng(ctx.seed, session, AVAILABILITY_DOMAIN)
        online = rng.random(ctx.num_clients) < self.availability
        alive = ctx.round_idx < self._dropout_round(ctx)
        return np.flatnonzero(online & alive)

    def sample_round(self, ctx: ParticipationContext) -> ParticipationRound:
        available = self.available_clients(ctx)
        if available.size == 0:
            raise RuntimeError(
                f"no clients available in round {ctx.round_idx} "
                f"(availability={self.availability}, dropout_rate={self.dropout_rate}); "
                "raise availability or lower dropout_rate"
            )
        rng = participation_rng(ctx.seed, ctx.round_idx, SAMPLING_DOMAIN)
        mask = rng.random(available.size) < self.sample_rate
        selected = available[mask]
        floor = min(self.min_clients, available.size)
        if selected.size < floor:
            extra = available[rng.choice(available.size, size=floor, replace=False)]
            selected = np.union1d(selected, extra)
        sampled = selected.astype(np.int64)
        return ParticipationRound(
            sampled=sampled, latencies=self.latencies(ctx, sampled)
        )

    def latencies(
        self, ctx: ParticipationContext, sampled: np.ndarray
    ) -> tuple[float, ...]:
        """Latency draws for the sampled cohort (none for plain churn)."""
        return ()


@PARTICIPATION.register("tiered")
class TieredParticipation(ChurnParticipation):
    """Device-speed tiers with per-round lognormal latency jitter.

    Extends :class:`ChurnParticipation` (set ``availability=1.0``,
    ``dropout_rate=0.0`` — the defaults here — for a pure straggler model).
    Each client is permanently assigned a tier from ``speeds`` with mixture
    ``weights``; its latency in round ``t`` is
    ``speeds[tier] · exp(jitter · z)``, where ``z`` comes from the round's
    latency stream indexed at the client id — deterministic per
    ``(seed, round, cid)`` and independent of the rest of the cohort.
    """

    name = "tiered"

    def __init__(
        self,
        sample_rate: float = 0.2,
        min_clients: int = 4,
        availability: float = 1.0,
        session_length: int = 4,
        dropout_rate: float = 0.0,
        speeds=(1.0, 2.0, 4.0),
        weights=None,
        jitter: float = 0.25,
    ) -> None:
        super().__init__(
            sample_rate=sample_rate,
            min_clients=min_clients,
            availability=availability,
            session_length=session_length,
            dropout_rate=dropout_rate,
        )
        speeds = tuple(float(s) for s in speeds)
        if not speeds or any(s <= 0 for s in speeds):
            raise ValueError("speeds must be positive and non-empty")
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(speeds):
                raise ValueError("weights must match speeds in length")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative and sum > 0")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.speeds = speeds
        self.weights = weights
        self.jitter = float(jitter)
        self._tiers: np.ndarray | None = None

    def _tier_of(self, ctx: ParticipationContext) -> np.ndarray:
        """Run-constant per-client tier assignment (cached, re-derivable)."""
        if self._tiers is None or self._tiers.size != ctx.num_clients:
            rng = participation_rng(ctx.seed, 0, TIER_DOMAIN)
            probs = None
            if self.weights is not None:
                total = sum(self.weights)
                probs = [w / total for w in self.weights]
            self._tiers = rng.choice(
                len(self.speeds), size=ctx.num_clients, p=probs
            ).astype(np.int64)
        return self._tiers

    def latencies(
        self, ctx: ParticipationContext, sampled: np.ndarray
    ) -> tuple[float, ...]:
        tiers = self._tier_of(ctx)
        speeds = np.asarray(self.speeds)[tiers[sampled]]
        # One population-length vector per round, indexed at the sampled ids:
        # client cid's jitter depends only on (seed, round, cid), never on
        # who else was sampled, so arrival order is backend-independent.
        z = latency_rng(ctx.seed, ctx.round_idx).standard_normal(ctx.num_clients)
        draws = speeds * np.exp(self.jitter * z[sampled])
        return tuple(float(d) for d in draws)
