"""Federated learning substrate.

Implements the synchronous, sampled-client FL protocol from Algorithm 1 of
the paper: at each round the server sends the global model to a sampled set
of clients, benign clients run ``K`` local SGD steps and return their updates,
compromised clients return whatever the active attack produces, and the
server aggregates (optionally through a robust-aggregation defense).

Three training algorithms are provided, matching the paper's evaluation:

* :class:`~repro.federated.algorithms.fedavg.FedAvg`
* :class:`~repro.federated.algorithms.feddc.FedDC` (drift decoupling and
  correction — regularisation-based personalisation)
* :class:`~repro.federated.algorithms.metafed.MetaFed` (cyclic knowledge
  distillation — knowledge-distillation-based personalisation)
"""

from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.algorithms.metafed import MetaFed
from repro.federated.client import LocalTrainingConfig, local_train
from repro.federated.engine import (
    CallbackHook,
    ClientResult,
    ClientTask,
    ClientUpdate,
    EvaluationHook,
    ExecutionBackend,
    HookPipeline,
    ProcessPoolBackend,
    RoundHook,
    RoundPlan,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    build_round_plan,
    make_backend,
)
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.population import (
    ChurnParticipation,
    ClientPopulation,
    ParticipationContext,
    ParticipationModel,
    ParticipationRound,
    SyntheticPopulation,
    TieredParticipation,
    UniformParticipation,
    uniform_sample,
)
from repro.federated.rng import client_rng, client_stream_seed, personalization_seed
from repro.federated.sampling import sample_clients
from repro.federated.server import FederatedServer, ServerConfig

__all__ = [
    "FederatedAlgorithm",
    "FedAvg",
    "FedDC",
    "MetaFed",
    "LocalTrainingConfig",
    "local_train",
    "RoundRecord",
    "TrainingHistory",
    "sample_clients",
    "uniform_sample",
    "ClientPopulation",
    "SyntheticPopulation",
    "ParticipationModel",
    "ParticipationContext",
    "ParticipationRound",
    "UniformParticipation",
    "ChurnParticipation",
    "TieredParticipation",
    "FederatedServer",
    "ServerConfig",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "available_backends",
    "make_backend",
    "RoundHook",
    "HookPipeline",
    "EvaluationHook",
    "CallbackHook",
    "ClientTask",
    "ClientResult",
    "ClientUpdate",
    "RoundPlan",
    "build_round_plan",
    "client_rng",
    "client_stream_seed",
    "personalization_seed",
]
