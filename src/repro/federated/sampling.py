"""Client sampling for each federated round.

Sampling consumes the *server's* RNG stream (not the per-client streams
derived in :mod:`repro.federated.rng`), so the sampled set for round ``t`` is
a pure function of the run seed and the number of preceding rounds — which is
what lets every execution backend replay identical round plans.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_clients"]


def sample_clients(
    num_clients: int,
    sample_rate: float,
    rng: np.random.Generator,
    min_clients: int = 2,
) -> np.ndarray:
    """Sample a subset of client ids for one round.

    The paper samples each client independently with probability ``q``
    (q = 1% at paper scale).  To keep small simulations meaningful we enforce
    a floor of ``min_clients`` sampled clients per round.  The returned ids
    are sorted, which fixes the round's aggregation order across backends.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    mask = rng.random(num_clients) < sample_rate
    selected = np.flatnonzero(mask)
    if selected.size < min(min_clients, num_clients):
        extra = rng.choice(num_clients, size=min(min_clients, num_clients), replace=False)
        selected = np.union1d(selected, extra)
    return selected.astype(np.int64)
