"""Deprecated client-sampling entry point.

The sampler moved behind the participation API: the logic lives in
:func:`repro.federated.population.participation.uniform_sample` (as the
``uniform`` participation model's internals), and ``FederatedServer``
consumes a :class:`~repro.federated.population.ParticipationModel` instead
of calling this module.  ``sample_clients`` remains as a thin shim for
external callers and warns on use.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.federated.population.participation import uniform_sample

__all__ = ["sample_clients"]


def sample_clients(
    num_clients: int,
    sample_rate: float,
    rng: np.random.Generator,
    min_clients: int = 2,
) -> np.ndarray:
    """Deprecated: use the ``uniform`` participation model.

    Identical behaviour to :func:`~repro.federated.population.participation.
    uniform_sample` (this is the same code path, including the pinned
    conditional min-floor RNG consumption); only the import location is
    deprecated.
    """
    warnings.warn(
        "repro.federated.sampling.sample_clients is deprecated; use the "
        "'uniform' participation model (repro.federated.population."
        "participation.uniform_sample) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return uniform_sample(num_clients, sample_rate, rng, min_clients=min_clients)
