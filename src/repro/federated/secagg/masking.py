"""Pairwise additive masking over IEEE-754 bit patterns.

Secure aggregation hides individual client updates from the server: each
pair of round participants ``(i, j)`` derives a shared mask from a seeded
per-pair RNG stream (:func:`repro.federated.rng.pair_mask_rng`), client
``i`` adds it and client ``j`` subtracts it, and the per-pair terms cancel
in the aggregate — the server only ever learns the sum.

Why bit patterns and not float arithmetic: the repo's core guarantee is
*bit-identical* histories per seed, and float addition is not associative —
``(u + m) - m`` already differs from ``u`` in the last ulp, so any
float-domain masking scheme breaks bit-identity the moment a mask is
applied.  Masking here therefore operates on the raw 64-bit IEEE-754 words
of the update in the ring ``Z_2^64``: add a uniformly random 64-bit word to
each parameter's bit pattern (wrapping), and the masked word is a one-time
pad — perfectly hiding, with *exact* cancellation because integer addition
mod 2**64 is associative and invertible.  Masked vectors travel as float64
reinterpretations of those words; every transport in the repo
(:func:`repro.nn.serialization.vector_to_bytes` and same-dtype copies) is a
memcpy for float64, so the words survive the wire bit-for-bit even when
they happen to spell NaNs or infinities.

A client's aggregate mask over the round's participant set ``P`` is

    M_i  =  sum_{j in P, j > i} m_ij  -  sum_{j in P, j < i} m_ji   (mod 2**64)

so ``sum_{i in P} M_i = 0 (mod 2**64)``: summing the masked *words* of all
participants yields the sum of the plaintext words.  (The defense fold
itself is float addition, not word addition, so the sealed
:class:`~repro.federated.secagg.aggregator.SecureAggregator` removes each
``M_i`` exactly — see its docstring for how that maps onto the multi-party
protocol.)

Dropout recovery needs no key shares in this simulation: masks are pure
functions of ``(seed, round, pair)``, so a re-dispatched task — e.g. after
the distributed backend loses a worker mid-round — re-derives the exact
masks (and therefore the exact masked bytes) the dead worker would have
sent.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.federated.rng import pair_mask_rng

#: Exclusive upper bound of the mask words (the full 64-bit word range).
_WORD_MAX = (1 << 64) - 1


def pairwise_mask(
    seed: int, round_idx: int, client_a: int, client_b: int, dim: int
) -> np.ndarray:
    """The shared mask word vector of one client pair for one round.

    Symmetric in the pair (both endpoints derive the same vector); uniform
    over the full 64-bit word range, so a single application is a one-time
    pad on the update's bit pattern.
    """
    rng = pair_mask_rng(seed, round_idx, client_a, client_b)
    return rng.integers(0, _WORD_MAX, size=int(dim), dtype=np.uint64, endpoint=True)


def client_round_mask(
    seed: int,
    round_idx: int,
    client_id: int,
    participants: Iterable[int],
    dim: int,
) -> np.ndarray:
    """One client's aggregate mask ``M_i`` over the round's participants.

    ``participants`` is the round's full sampled-client set (benign *and*
    compromised — every participant must mask, or the pairwise terms
    involving the unmasked client would survive in the sum).  Clients absent
    from ``participants`` contribute no pair; ``client_id`` itself is
    skipped.  Summing the returned vectors over every participant is
    identically zero mod 2**64.
    """
    total = np.zeros(int(dim), dtype=np.uint64)
    for other in sorted({int(p) for p in participants} - {int(client_id)}):
        mask = pairwise_mask(seed, round_idx, client_id, other, dim)
        if client_id < other:
            total += mask
        else:
            total -= mask
    return total


def mask_words(update: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Add ``mask`` to the update's IEEE-754 words (mod 2**64).

    Returns a fresh float64 array whose bit pattern is
    ``bits(update) + mask``; the input is never modified.  The result is not
    meaningful as numbers — it is ciphertext riding the float64 transport.
    """
    words = np.ascontiguousarray(update, dtype=np.float64).view(np.uint64)
    return (words + np.asarray(mask, dtype=np.uint64)).view(np.float64)


def unmask_words(masked: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`mask_words` (word subtraction mod 2**64)."""
    words = np.ascontiguousarray(masked, dtype=np.float64).view(np.uint64)
    return (words - np.asarray(mask, dtype=np.uint64)).view(np.float64)


def mask_update(
    update: np.ndarray,
    seed: int,
    round_idx: int,
    client_id: int,
    participants: Iterable[int],
) -> np.ndarray:
    """Mask one client's update with its aggregate round mask."""
    mask = client_round_mask(seed, round_idx, client_id, participants, update.shape[0])
    return mask_words(update, mask)


def unmask_update(
    masked: np.ndarray,
    seed: int,
    round_idx: int,
    client_id: int,
    participants: Iterable[int],
) -> np.ndarray:
    """Remove one client's aggregate round mask (bit-exact inverse)."""
    mask = client_round_mask(seed, round_idx, client_id, participants, masked.shape[0])
    return unmask_words(masked, mask)
