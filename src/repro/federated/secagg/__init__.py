"""Secure aggregation: pairwise additive masking over the update pipeline.

Clients (driver-side backends and remote distributed workers alike) mask
their updates with pairwise masks derived from seeded per-pair RNG streams
(:mod:`repro.federated.secagg.masking`); the server folds behind the sealed
:class:`~repro.federated.secagg.aggregator.SecureAggregator` layer and only
ever observes masked bytes or the finished aggregate.  Sum-folding defenses
(``mean``, ``weighted_mean``, ``norm_bound``, ``dp``, ``signsgd``, ``crfl``)
are bit-identical with masking on or off; inspection defenses declare
``requires_plaintext_updates`` and fail fast with
:class:`~repro.federated.secagg.aggregator.PlaintextRequiredError`.

Enable per scenario with ``secure_aggregation: true`` (CLI: ``--secagg``).
"""

from repro.federated.secagg.aggregator import (
    MASKED_KEY,
    PlaintextRequiredError,
    SecureAggregator,
)
from repro.federated.secagg.masking import (
    client_round_mask,
    mask_update,
    mask_words,
    pairwise_mask,
    unmask_update,
    unmask_words,
)

__all__ = [
    "MASKED_KEY",
    "PlaintextRequiredError",
    "SecureAggregator",
    "client_round_mask",
    "mask_update",
    "mask_words",
    "pairwise_mask",
    "unmask_update",
    "unmask_words",
]
