"""The server side of secure aggregation: a sealed unmask-then-fold layer.

In the multi-party protocol the server adds the masked contributions and
the pairwise masks cancel *in the modular sum* — it never holds a single
plaintext update.  This simulation keeps the observable contract of that
protocol while staying bit-identical to plaintext runs:

* everything outside this class — the wire, the round hooks, retained
  update lists, attack code — only ever sees masked bytes;
* the defense API only sees the finished fold, exactly as if the masks had
  cancelled in the sum.

The masks live in ``Z_2^64`` over IEEE-754 words (see
:mod:`repro.federated.secagg.masking`), but the defense fold is *float*
addition, where modular word cancellation has no meaning.  The sealed layer
therefore removes each client's aggregate mask exactly (word subtraction is
the exact inverse of word addition) before delegating to the wrapped
defense's slot-order fold — the simulation stand-in for the protocol's
in-sum cancellation, with the same result: the fold consumes the exact
plaintext bits, so secagg-on and secagg-off histories are bit-identical
per seed.

Only *sum-folding* defenses are compatible: their math depends on each
update solely through per-update-local transforms (identity, clipping,
signing — work a real deployment pushes to the client) plus the aggregate.
Defenses that compare updates *across* clients (Krum distances, coordinate
medians, anomaly detectors) declare
``requires_plaintext_updates = True`` and are rejected up front with the
structured :class:`PlaintextRequiredError`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace

import numpy as np

from repro.defenses.base import AggregationContext, AggregationState, Aggregator
from repro.federated.engine.plan import ClientUpdate
from repro.federated.secagg.masking import unmask_update

#: The metadata/extras key marking an update's vector as masked words.
MASKED_KEY = "secagg_masked"


class PlaintextRequiredError(ValueError):
    """A defense that inspects individual updates was configured under secagg.

    Structured so callers (CLI, sweep harnesses) can tell the capability
    mismatch apart from other configuration errors: ``defense`` names the
    offending aggregator and ``capability`` the flag that failed.
    """

    capability = "requires_plaintext_updates"

    def __init__(self, defense: str):
        self.defense = defense
        super().__init__(
            f"defense {defense!r} inspects individual client updates "
            f"({self.capability}) and cannot run under secure aggregation, "
            "where the server only sees the masked sum; choose a sum-folding "
            "defense (see `repro list defenses` — the 'server-blind' "
            "capability) or disable secure_aggregation"
        )


class SecureAggregator(Aggregator):
    """Wrap a server-blind defense so it folds behind the masking boundary.

    ``inner`` is the configured defense (possibly already wrapped in
    :class:`~repro.federated.engine.sharding.ShardedAggregator` — sharding
    concerns how the plaintext fold is parallelised and composes cleanly
    inside the sealed layer).  ``check`` is the *unwrapped* defense whose
    capability flag gates construction; it defaults to ``inner``.

    Streaming-only by design: the buffered matrix path would hand the
    defense a stacked plaintext matrix, which is exactly the server-side
    view secure aggregation removes.
    """

    streaming = True
    streaming_only = True
    shardable = False  # the sealed layer wraps the sharded fold, not vice versa

    def __init__(self, inner: Aggregator, seed: int, check: Aggregator | None = None):
        check = check if check is not None else inner
        if getattr(check, "requires_plaintext_updates", False):
            raise PlaintextRequiredError(getattr(check, "name", type(check).__name__))
        self.inner = inner
        self.seed = int(seed)
        self.name = f"secagg({getattr(inner, 'name', type(inner).__name__)})"

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        raise ValueError(
            "secure aggregation has no matrix path: a stacked plaintext "
            "update matrix is exactly the server-side view it removes — "
            "run with streaming='auto' or 'on'"
        )

    def begin_round(self, ctx: AggregationContext) -> AggregationState:
        return self.inner.begin_round(ctx)

    def accumulate(self, state: AggregationState, update: ClientUpdate) -> None:
        if not update.metadata.get(MASKED_KEY):
            raise ValueError(
                f"secure aggregation received an unmasked update from client "
                f"{update.client_id}; every round participant must mask "
                "(was the update produced outside the execution engine?)"
            )
        ctx = state.ctx
        tel = ctx.telemetry
        span = (
            tel.tracer.span(
                "secagg_unmask", round=ctx.round_idx, client=update.client_id
            )
            if tel is not None
            else nullcontext()
        )
        with span:
            plaintext = unmask_update(
                update.update, self.seed, ctx.round_idx, update.client_id,
                ctx.sampled_clients,
            )
        metadata = {k: v for k, v in update.metadata.items() if k != MASKED_KEY}
        self.inner.accumulate(
            state, replace(update, update=plaintext, metadata=metadata)
        )

    def finalize(
        self,
        state: AggregationState,
        global_params: np.ndarray,
        ctx: AggregationContext | None = None,
    ) -> np.ndarray:
        return self.inner.finalize(state, global_params, ctx)

    def abort(self, state: AggregationState) -> None:
        self.inner.abort(state)

    def close(self) -> None:
        closer = getattr(self.inner, "close", None)
        if closer is not None:
            closer()
