"""Pluggable federated execution engine.

Separates round *orchestration* (what the server decides: sampling,
aggregation, bookkeeping) from client *execution* (how the per-client work
runs: serially, on threads, on worker processes) and from *instrumentation*
(typed round hooks).  See :mod:`repro.federated.engine.plan`,
:mod:`repro.federated.engine.backends` and
:mod:`repro.federated.engine.hooks`.

The distributed backend (socket-connected worker processes, registered as
``backend="distributed"``) lives in
:mod:`repro.federated.engine.distributed` and is deliberately *not*
re-exported here: its worker side imports the experiment runner, and the
backend registry loads it lazily on first lookup.
"""

from repro.federated.engine.backends import (
    EngineContext,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    make_backend,
    run_benign_task,
    run_malicious_task,
)
from repro.federated.engine.batched import (
    BatchedBackend,
    BatchedClientRunner,
)
from repro.federated.engine.hooks import (
    CallbackHook,
    EvaluationHook,
    HookPipeline,
    RoundHook,
)
from repro.federated.engine.ledger import (
    CommunicationLedger,
    LedgerHook,
)
from repro.federated.engine.plan import (
    ClientResult,
    ClientTask,
    ClientUpdate,
    RoundPlan,
    build_round_plan,
)
from repro.federated.engine.sharding import (
    ShardedAggregator,
    maybe_shard,
    plan_shards,
)

__all__ = [
    "ShardedAggregator",
    "maybe_shard",
    "plan_shards",
    "EngineContext",
    "ExecutionBackend",
    "BatchedBackend",
    "BatchedClientRunner",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "available_backends",
    "make_backend",
    "run_benign_task",
    "run_malicious_task",
    "RoundHook",
    "HookPipeline",
    "EvaluationHook",
    "CallbackHook",
    "CommunicationLedger",
    "LedgerHook",
    "ClientTask",
    "ClientResult",
    "ClientUpdate",
    "RoundPlan",
    "build_round_plan",
]
