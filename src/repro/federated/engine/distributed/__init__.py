"""Distributed execution: coordinator/worker processes over TCP sockets.

The subsystem splits a round's benign client work across worker *processes
on separate interpreters* — spawned locally by the coordinator or started
standalone (``python -m repro worker``) on any reachable host — speaking a
small versioned, length-prefixed binary protocol:

* :mod:`~repro.federated.engine.distributed.protocol` — message framing and
  (de)serialization; parameter vectors and client updates travel as the raw
  float64 bytes of :mod:`repro.nn.serialization`, so remote execution is
  bit-identical to local execution.
* :mod:`~repro.federated.engine.distributed.worker` — the long-lived worker
  process: announces itself, rebuilds the execution context from a scenario
  payload (cached across rounds by fingerprint), executes benign
  :class:`~repro.federated.engine.plan.ClientTask` objects and streams each
  update back the moment it is computed.
* :mod:`~repro.federated.engine.distributed.coordinator` — the
  ``DistributedBackend`` (registered as ``backend="distributed"``): spawns
  or attaches workers, dispatches tasks with work-stealing, implements
  ``iter_updates`` by yielding updates as frames arrive, and re-dispatches
  the unfinished tasks of a dead worker.

This package is intentionally *not* imported by
:mod:`repro.federated.engine`'s ``__init__`` — the worker side pulls in the
experiment runner, and the backend registry loads
:mod:`.coordinator` lazily on first ``backend="distributed"`` lookup.
"""

from repro.federated.engine.distributed.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    context_fingerprint,
    context_payload,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "MessageType",
    "ProtocolError",
    "context_fingerprint",
    "context_payload",
]
