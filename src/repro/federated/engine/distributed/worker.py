"""Long-lived distributed-execution worker.

A worker is a standalone interpreter (``python -m repro worker``) that
listens on a TCP socket, announces its address on stdout, and serves one
coordinator at a time:

1. On connect it sends ``HELLO`` (protocol version + pid).
2. ``CONFIGURE`` carries a scenario payload (see
   :func:`~repro.federated.engine.distributed.protocol.context_payload`);
   the worker rebuilds the execution context — federation, model factory,
   algorithm, local-training config — through the *same* runner builders
   the driver uses, so both sides construct bit-identical state.  Contexts
   are cached across rounds (and, for standalone workers, across whole
   runs) keyed by the payload's fingerprint.
3. ``ROUND`` installs the round's global parameter vector once, so ``TASK``
   frames stay small.
4. Each ``TASK`` is executed through
   :func:`~repro.federated.engine.backends.run_benign_task` on the cached
   scratch model and its ``UPDATE`` is streamed back the moment it exists.
   A task may carry the client's algorithm state vector (FedDC drift);
   it is installed before execution.

Determinism needs no extra machinery: a task's randomness comes entirely
from its ``(seed, round, client)`` stream seed (:mod:`repro.federated.rng`)
and vectors cross the wire as raw float64, so a remote worker computes the
exact bytes the serial backend would.

``REPRO_WORKER_TEST_DELAY`` (seconds, test-only) makes the worker sleep
``delay / (1 + task.order)`` after computing each update, so lower slots
finish *last* — the reordered-completion fixture of the bit-identity tests.
"""

from __future__ import annotations

import os
import socket
import sys
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.federated.engine.backends import EngineContext, run_benign_task
from repro.federated.engine.distributed.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    context_fingerprint,
    recv_message,
    send_message,
)
from repro.federated.engine.plan import ClientTask
from repro.federated.secagg.masking import mask_update
from repro.nn import serialization
from repro.nn.serialization import flatten_params

#: Built contexts a worker keeps warm; small because each holds a federation.
_CONTEXT_CACHE_SIZE = 4

#: The stdout announcement a coordinator parses to learn the bound address.
ANNOUNCE_PREFIX = "REPRO-WORKER LISTENING"


@dataclass
class _WorkerContext:
    """One rebuilt execution context plus its reusable scratch model."""

    fingerprint: str
    engine: EngineContext
    model: object


def build_context(payload: dict) -> _WorkerContext:
    """Rebuild the benign execution context from a scenario payload.

    Uses the experiment runner's own builders, so dataset, model factory
    and algorithm are constructed exactly as the driver constructs them
    (both are deterministic in the payload's seeds).
    """
    # Imported here: the protocol/coordinator side must stay importable
    # without dragging the whole experiments stack in.
    from repro.experiments.runner import (
        build_algorithm,
        build_dataset,
        build_model_factory,
    )
    from repro.experiments.scenario import Scenario

    scenario = Scenario.from_dict(dict(payload))
    dataset, generator = build_dataset(scenario)
    model_factory = build_model_factory(scenario, generator)
    algorithm = build_algorithm(scenario)
    model = model_factory()
    algorithm.init_state(dataset.num_clients, flatten_params(model).shape[0])
    if hasattr(algorithm, "set_label_distributions"):
        # Mirrors FederatedServer.__init__; harmless for the benign path but
        # keeps worker-side algorithm state indistinguishable from driver's.
        # label_distributions() works on eager datasets and lazy populations
        # alike (the population derives it from metadata, no materialisation).
        algorithm.set_label_distributions(dataset.label_distributions())
    engine = EngineContext(
        dataset=dataset,
        model_factory=model_factory,
        algorithm=algorithm,
        local_config=scenario.local,
        attack=None,
    )
    return _WorkerContext(
        fingerprint=context_fingerprint(payload), engine=engine, model=model
    )


class WorkerServer:
    """Accept loop + per-coordinator session loop of one worker process."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, once: bool = False) -> None:
        self.host = host
        self.port = port
        self.once = once
        self._contexts: OrderedDict[str, _WorkerContext] = OrderedDict()
        self._test_delay = float(os.environ.get("REPRO_WORKER_TEST_DELAY", "0") or 0)
        #: Seconds the most recent context build took; attached to the first
        #: profiled UPDATE after the build, then cleared (context builds are
        #: per-session, not per-task, so charging every task would mislead).
        self._last_context_build_s: float | None = None

    def _log(self, message: str) -> None:
        print(f"[repro-worker {os.getpid()}] {message}", file=sys.stderr, flush=True)

    def serve(self) -> None:
        """Bind, announce the bound address on stdout, and serve coordinators."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self.port))
            listener.listen(1)
            host, port = listener.getsockname()[:2]
            print(f"{ANNOUNCE_PREFIX} {host} {port}", flush=True)
            while True:
                conn, peer = listener.accept()
                self._log(f"coordinator connected from {peer[0]}:{peer[1]}")
                try:
                    self._serve_coordinator(conn)
                except ConnectionError:
                    # The coordinator vanished mid-send; nothing to salvage.
                    self._log("coordinator connection lost")
                finally:
                    conn.close()
                    self._log("coordinator session ended")
                if self.once:
                    return
        finally:
            listener.close()

    def _context_for(self, fingerprint: str, payload: dict) -> _WorkerContext:
        """Fetch or build the context for a fingerprint (LRU-cached)."""
        cached = self._contexts.get(fingerprint)
        if cached is not None:
            self._contexts.move_to_end(fingerprint)
            return cached
        self._log(f"building execution context {fingerprint}")
        build_start = time.monotonic()
        context = build_context(payload)
        self._last_context_build_s = time.monotonic() - build_start
        if context.fingerprint != fingerprint:
            raise ProtocolError(
                f"scenario payload hashes to {context.fingerprint}, "
                f"coordinator announced {fingerprint}"
            )
        self._contexts[fingerprint] = context
        while len(self._contexts) > _CONTEXT_CACHE_SIZE:
            self._contexts.popitem(last=False)
        return context

    def _serve_coordinator(self, conn: socket.socket) -> None:
        send_message(
            conn, MessageType.HELLO, {"version": PROTOCOL_VERSION, "pid": os.getpid()}
        )
        active: _WorkerContext | None = None
        global_params: np.ndarray | None = None
        wire_dtype = "float64"
        secagg: dict | None = None
        telemetry = False
        while True:
            try:
                msg, fields, arrays = recv_message(conn)
            except ConnectionClosed:
                return
            if msg is MessageType.SHUTDOWN:
                return
            if msg is MessageType.CONFIGURE:
                try:
                    # Mirror the coordinator's encoding on our UPDATE sends;
                    # an unknown tag is reported as ERROR, not a worker death.
                    requested = fields.get("wire_dtype", "float64")
                    serialization.wire_dtype(requested)
                    active = self._context_for(fields["fingerprint"], fields["scenario"])
                except Exception:
                    send_message(
                        conn, MessageType.ERROR, {"traceback": traceback.format_exc()}
                    )
                    continue
                wire_dtype = requested
                send_message(
                    conn, MessageType.CONFIGURED, {"fingerprint": active.fingerprint}
                )
            elif msg is MessageType.ROUND:
                global_params = arrays["params"]
                secagg = fields.get("secagg")
                telemetry = bool(fields.get("telemetry"))
                if secagg is not None and wire_dtype != "float64":
                    # Masked words only survive a bit-exact transport; report
                    # the misconfiguration instead of shipping corrupt masks.
                    send_message(
                        conn,
                        MessageType.ERROR,
                        {
                            "traceback": (
                                "secure aggregation requires the float64 wire "
                                f"format; this session was configured with "
                                f"wire_dtype={wire_dtype!r}"
                            )
                        },
                    )
                    secagg = None
            elif msg is MessageType.TASK:
                self._run_task(
                    conn, active, global_params, fields, arrays, wire_dtype,
                    secagg, telemetry,
                )
            else:
                send_message(
                    conn,
                    MessageType.ERROR,
                    {"traceback": f"worker cannot handle message type {msg.name}"},
                )

    def _run_task(
        self,
        conn: socket.socket,
        active: _WorkerContext | None,
        global_params: np.ndarray | None,
        fields: dict,
        arrays: dict[str, np.ndarray],
        wire_dtype: str = "float64",
        secagg: dict | None = None,
        telemetry: bool = False,
    ) -> None:
        order = fields.get("order")
        try:
            if active is None:
                raise ProtocolError("TASK received before CONFIGURE")
            if global_params is None:
                raise ProtocolError("TASK received before ROUND parameters")
            task = ClientTask(
                client_id=fields["client"],
                round_idx=fields["round"],
                rng_seed=fields["rng_seed"],
                malicious=False,
                order=order,
            )
            state = arrays.get("state")
            if state is not None:
                active.engine.algorithm.set_client_benign_state(task.client_id, state)
            train_start = time.monotonic()
            result = run_benign_task(active.engine, task, global_params, active.model)
            train_s = time.monotonic() - train_start
            update = result.update
            update_fields = {
                "order": task.order,
                "client": task.client_id,
                "loss": result.loss,
            }
            mask_s = None
            if secagg is not None:
                # Mask at the source: the plaintext update never leaves this
                # process.  Masks are pure functions of (seed, round, pair),
                # so a re-dispatched task after a worker death regenerates
                # the identical ciphertext on whichever worker picks it up.
                mask_start = time.monotonic()
                update = mask_update(
                    update,
                    secagg["seed"],
                    task.round_idx,
                    task.client_id,
                    secagg["participants"],
                )
                mask_s = time.monotonic() - mask_start
                update_fields["masked"] = True
            if telemetry:
                # Worker-side profiling (protocol v4): phase durations plus
                # the worker's monotonic send timestamp, from which the
                # coordinator estimates the per-link clock offset.  ``mono``
                # is stamped below, right before the frame is sent.
                blob = {"train_s": round(train_s, 6)}
                if mask_s is not None:
                    blob["mask_s"] = round(mask_s, 6)
                if self._last_context_build_s is not None:
                    blob["context_build_s"] = round(self._last_context_build_s, 6)
                    self._last_context_build_s = None
                update_fields["telemetry"] = blob
        except Exception:
            send_message(
                conn,
                MessageType.ERROR,
                {"traceback": traceback.format_exc(), "order": order},
            )
            return
        if self._test_delay:
            # Test-only completion scrambler: lower slots sleep longest, so
            # updates arrive at the coordinator in (roughly) reversed order.
            time.sleep(self._test_delay / (1.0 + task.order))
        if telemetry:
            update_fields["telemetry"]["mono"] = time.monotonic()
        send_message(
            conn,
            MessageType.UPDATE,
            update_fields,
            {"update": update},
            dtype=wire_dtype,
        )


def parse_listen_address(listen: str) -> tuple[str, int]:
    """Parse a ``--listen`` value into ``(host, port)``.

    Accepts ``host:port``, ``:port`` (all interfaces) and a bare port
    (loopback).  ``port`` 0 means an ephemeral port — the announce line
    reports what was actually bound.
    """
    if ":" in listen:
        host, _, port_text = listen.rpartition(":")
    else:
        host, port_text = "127.0.0.1", listen
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"malformed --listen address {listen!r}; expected host:port"
        ) from exc
    return host, port


def run_worker(listen: str = "127.0.0.1:0", once: bool = False) -> int:
    """CLI entry point: parse ``host:port``, serve until shutdown/SIGINT."""
    host, port = parse_listen_address(listen)
    server = WorkerServer(host=host, port=port, once=once)
    try:
        server.serve()
    except KeyboardInterrupt:
        pass
    return 0
