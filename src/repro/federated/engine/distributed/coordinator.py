"""The coordinator side: ``DistributedBackend`` behind ``ExecutionBackend``.

The backend owns a set of worker links — sockets to worker processes it
spawned locally (:meth:`DistributedBackend.spawn_local`) or attached to
(``connect="host:port,..."`` for workers started standalone with
``python -m repro worker``).  Per round it:

1. lazily starts/configures workers (``CONFIGURE`` ships the scenario
   payload; workers cache the rebuilt context by fingerprint),
2. broadcasts the round's global parameters (``ROUND``),
3. dispatches benign tasks with *work-stealing*: every worker holds at most
   :data:`PIPELINE_DEPTH` outstanding tasks and receives the next pending
   task the moment one of its updates arrives, so fast workers naturally
   steal the slow workers' share,
4. runs malicious tasks in the driver (attacks are stateful — exactly like
   the serial/thread backends) while workers chew on the benign fan-out,
5. yields each :class:`~repro.federated.engine.plan.ClientUpdate` as its
   frame arrives — ``iter_updates`` streams, so incremental and sharded
   aggregation work unchanged — and
6. on a worker's death (EOF/reset mid-round) re-queues that worker's
   unfinished tasks for the surviving workers.  Tasks are deterministic in
   their ``(seed, round, client)`` stream, so a re-dispatched task computes
   the exact same update and the run's history is unchanged.

Bit-identity therefore holds per seed against the serial backend, under
any completion order and across worker deaths, as long as at least one
worker survives.
"""

from __future__ import annotations

import os
import select
import selectors
import socket
import subprocess
import sys
from collections import deque
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.federated.engine.backends import (
    ExecutionBackend,
    run_malicious_task,
    telemetry_span,
)
from repro.federated.engine.distributed.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    context_fingerprint,
    context_payload,
    message_size,
    recv_message,
    send_message,
)
from repro.federated.engine.ledger import SETUP_ROUND
from repro.federated.engine.plan import ClientResult, ClientTask, RoundPlan
from repro.nn import serialization
from repro.registry import BACKENDS

#: Outstanding tasks per worker.  1 would be pure work-stealing but leaves a
#: worker idle for a dispatch round-trip between tasks; one prefetched task
#: hides that latency without hoarding work on a slow worker.
PIPELINE_DEPTH = 2

#: The worker CLI invocation ``spawn_local`` runs (module mode keeps the
#: child on the same interpreter and package as the coordinator).
_WORKER_CMD = ("-m", "repro", "worker", "--listen", "127.0.0.1:0", "--once")


@dataclass
class _WorkerLink:
    """One connected worker: socket, identity, and in-flight bookkeeping."""

    sock: socket.socket
    pid: int | None = None
    proc: subprocess.Popen | None = None
    fingerprint: str | None = None
    outstanding: dict[int, ClientTask] = field(default_factory=dict)
    alive: bool = True

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        self.alive = False


@BACKENDS.register("distributed")
class DistributedBackend(ExecutionBackend):
    """Fan benign clients out over socket-connected worker processes.

    ``max_workers`` local workers are spawned lazily on the first round
    (default: one per core, capped at 4); passing ``connect`` attaches to
    externally started workers instead and spawns nothing.  The backend
    needs a :class:`~repro.experiments.scenario.Scenario` to describe the
    execution context to its workers — the experiment runner plumbs it
    automatically; direct :class:`~repro.federated.server.FederatedServer`
    users call :meth:`configure_scenario` once before running.
    """

    name = "distributed"
    streaming_updates = True
    process_isolation = True
    distributed = True

    def __init__(
        self,
        max_workers: int | None = None,
        connect: str | list[str] | None = None,
        spawn_timeout: float = 60.0,
        wire_dtype: str = "float64",
        secure_aggregation: bool = False,
    ) -> None:
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or max(1, min(4, os.cpu_count() or 1))
        self.connect = _parse_addresses(connect)
        self.spawn_timeout = spawn_timeout
        # Validate at construction so a typo fails before workers spawn.
        serialization.wire_dtype(wire_dtype)
        if secure_aggregation and wire_dtype != "float64":
            raise ValueError(
                "secure aggregation is incompatible with wire_dtype="
                f"{wire_dtype!r}: masked updates are IEEE-754 float64 words "
                "plus a pairwise mask mod 2**64, and any narrowing round-trip "
                "corrupts the ciphertext so the masks no longer cancel; use "
                "the bit-exact float64 wire format"
            )
        #: Wire encoding of every parameter/update vector this backend ships
        #: ("float64" = bit-exact default, "float32" = lossy, half traffic).
        self.wire_dtype = wire_dtype
        #: Declared at construction so an incompatible wire_dtype fails here
        #: rather than rounds later; the round-time trigger is the server's
        #: ``ctx.secagg_seed`` (guarded again in ``_run_round``).
        self.secure_aggregation = secure_aggregation
        self._links: list[_WorkerLink] = []
        self._started = False
        self._scenario_payload: dict | None = None
        self._fingerprint: str | None = None
        #: Tasks re-queued after a worker death (observable by tests/hooks).
        self.redispatch_count = 0

    # -- configuration ------------------------------------------------------

    def configure_scenario(self, scenario) -> None:
        """Record the scenario whose context workers must rebuild.

        Accepts a :class:`~repro.experiments.scenario.Scenario` or its
        ``to_dict()`` form.  Only the context fields (data, model,
        algorithm, local training, seed) reach the wire.
        """
        data = scenario.to_dict() if hasattr(scenario, "to_dict") else dict(scenario)
        self._scenario_payload = context_payload(data)
        self._fingerprint = context_fingerprint(self._scenario_payload)

    @property
    def workers(self) -> list[_WorkerLink]:
        """Live worker links (read-only view for tests and diagnostics)."""
        return [link for link in self._links if link.alive]

    @property
    def worker_pids(self) -> list[int]:
        return [link.pid for link in self.workers if link.pid is not None]

    # -- wire accounting ----------------------------------------------------

    def _record_wire(
        self,
        pid: int | None,
        direction: str,
        round_idx: int,
        header_bytes: int,
        payload_bytes: int,
    ) -> None:
        if self.ledger is None:
            return
        self.ledger.record(
            round_idx=round_idx,
            channel="wire",
            link=f"worker:{pid}" if pid is not None else "worker:?",
            direction=direction,
            header_bytes=header_bytes,
            payload_bytes=payload_bytes,
            dtype=self.wire_dtype,
        )

    def _send(
        self,
        link: _WorkerLink,
        msg_type: MessageType,
        fields: dict,
        arrays: dict[str, np.ndarray] | None = None,
        dtype: str = "float64",
        round_idx: int = SETUP_ROUND,
    ) -> None:
        """Send one frame to a worker, metering it into the wire ledger.

        The byte split is computed analytically by :func:`message_size` —
        exact, because it runs the same canonical ``json.dumps`` the encoder
        does — so metering copies no vector bytes.
        """
        send_message(link.sock, msg_type, fields, arrays, dtype=dtype)
        if self.ledger is not None:
            lengths = {name: int(a.shape[0]) for name, a in (arrays or {}).items()}
            header, payload = message_size(fields, lengths, dtype=dtype)
            self._record_wire(link.pid, "down", round_idx, header, payload)

    def _recv(self, link: _WorkerLink, round_idx: int = SETUP_ROUND):
        """Receive one frame from a worker, metering it into the wire ledger."""
        meter = None
        if self.ledger is not None:

            def meter(_msg, header_bytes, payload_bytes):
                self._record_wire(link.pid, "up", round_idx, header_bytes, payload_bytes)

        return recv_message(link.sock, meter=meter)

    # -- worker lifecycle ---------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        if self.connect:
            for address in self.connect:
                self._links.append(self._attach(address))
        else:
            self.spawn_local(self.max_workers)
        self._started = True

    def spawn_local(self, count: int) -> None:
        """Spawn ``count`` local worker processes and connect to them."""
        for _ in range(count):
            self._links.append(self._spawn_one())

    def _spawn_one(self) -> _WorkerLink:
        env = os.environ.copy()
        # The child must find the repro package no matter how this
        # interpreter found it (src checkout, editable install, zip path).
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        proc = subprocess.Popen(
            [sys.executable, *_WORKER_CMD],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            address = self._read_announcement(proc)
            return self._connect(address, proc=proc)
        except Exception:
            proc.kill()
            proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
            raise

    def _read_announcement(self, proc: subprocess.Popen) -> tuple[str, int]:
        """Wait for the worker's ``REPRO-WORKER LISTENING host port`` line."""
        assert proc.stdout is not None
        ready, _, _ = select.select([proc.stdout], [], [], self.spawn_timeout)
        if not ready:
            raise RuntimeError(
                f"spawned worker announced nothing within {self.spawn_timeout}s"
            )
        line = proc.stdout.readline()
        parts = line.split()
        if len(parts) != 4 or " ".join(parts[:2]) != "REPRO-WORKER LISTENING":
            raise RuntimeError(
                f"spawned worker exited or announced garbage: {line!r} "
                f"(returncode {proc.poll()})"
            )
        return parts[2], int(parts[3])

    def _attach(self, address: tuple[str, int]) -> _WorkerLink:
        return self._connect(address, proc=None)

    def _connect(
        self, address: tuple[str, int], proc: subprocess.Popen | None
    ) -> _WorkerLink:
        sock = socket.create_connection(address, timeout=self.spawn_timeout)
        sock.settimeout(self.spawn_timeout)
        # The HELLO frame is metered after decode — the worker's pid (the
        # ledger link label) only exists once the frame is read.
        sizes: list[tuple[int, int]] = []
        meter = (
            (lambda _msg, header, payload: sizes.append((header, payload)))
            if self.ledger is not None
            else None
        )
        msg, fields, _arrays = recv_message(sock, meter=meter)
        if msg is not MessageType.HELLO:
            raise ProtocolError(f"expected HELLO from worker, got {msg.name}")
        if fields.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"worker at {address[0]}:{address[1]} speaks protocol "
                f"{fields.get('version')}, coordinator speaks {PROTOCOL_VERSION}"
            )
        sock.settimeout(None)
        for header, payload in sizes:
            self._record_wire(fields.get("pid"), "up", SETUP_ROUND, header, payload)
        return _WorkerLink(sock=sock, pid=fields.get("pid"), proc=proc)

    def _configure_links(self) -> None:
        """Ship the scenario to any worker not yet on the current context.

        CONFIGUREs are sent to every stale worker first and acknowledged
        after, so workers build their contexts concurrently.
        """
        stale = [
            link
            for link in self.workers
            if link.fingerprint != self._fingerprint
        ]
        for link in stale:
            try:
                # ``wire_dtype`` rides next to the context but stays out of
                # the fingerprint: the rebuilt context is dtype-independent,
                # so switching encodings must not invalidate worker caches.
                self._send(
                    link,
                    MessageType.CONFIGURE,
                    {
                        "fingerprint": self._fingerprint,
                        "scenario": self._scenario_payload,
                        "wire_dtype": self.wire_dtype,
                    },
                )
            except OSError:
                link.close()
        stale = [link for link in stale if link.alive]
        for link in stale:
            try:
                msg, fields, _arrays = self._recv(link)
            except ConnectionClosed:
                # A worker that died while building its context is simply
                # dropped; the round runs on the survivors.
                link.close()
                continue
            if msg is MessageType.ERROR:
                raise RuntimeError(
                    f"distributed worker failed to build its context:\n"
                    f"{fields.get('traceback')}"
                )
            if msg is not MessageType.CONFIGURED:
                raise ProtocolError(f"expected CONFIGURED, got {msg.name}")
            link.fingerprint = fields["fingerprint"]

    # -- round execution ----------------------------------------------------

    def execute(self, plan: RoundPlan, global_params: np.ndarray) -> list[ClientResult]:
        results = {r.task.order: r for r in self._run_round(plan, global_params)}
        return [results[order] for order in range(len(plan))]

    def iter_updates(self, plan, global_params):
        for result in self._run_round(plan, global_params):
            yield self.make_update(result, plan)

    def _run_round(self, plan: RoundPlan, global_params: np.ndarray):
        """Yield the round's :class:`ClientResult` objects as they complete."""
        ctx = self.ctx
        benign = plan.benign_tasks
        pending: deque[ClientTask] = deque(benign)
        remaining: dict[int, ClientTask] = {t.order: t for t in benign}
        live: list[_WorkerLink] = []
        secagg_seed = ctx.secagg_seed
        if secagg_seed is not None and self.wire_dtype != "float64":
            # Belt and braces behind the constructor check: the round-time
            # trigger is the server's context, which a direct backend user
            # can reach without the constructor flag.
            raise RuntimeError(
                "secure aggregation is active but this coordinator ships "
                f"wire_dtype={self.wire_dtype!r}; masked updates survive only "
                "the bit-exact float64 wire format"
            )
        if benign:
            if self._scenario_payload is None:
                raise RuntimeError(
                    "DistributedBackend has no scenario to describe the worker "
                    "execution context; run through Scenario/run_experiment or "
                    "call backend.configure_scenario(scenario) first"
                )
            self._ensure_started()
            self._configure_links()
            live = self.workers
            if not live:
                raise RuntimeError("no distributed workers available")
            round_fields: dict = {"round": plan.round_idx}
            if secagg_seed is not None:
                # Workers mask at the source: each masked update leaves the
                # worker as ciphertext, so the coordinator process never
                # holds a remote client's plaintext update.
                round_fields["secagg"] = {
                    "seed": int(secagg_seed),
                    "participants": [int(c) for c in plan.sampled_clients],
                }
            if ctx.telemetry is not None:
                # Protocol v4: ask workers to profile their phases and attach
                # a telemetry blob to every UPDATE frame.
                round_fields["telemetry"] = True
            with telemetry_span(
                ctx, "dispatch",
                round=plan.round_idx, tasks=len(benign), backend="distributed",
            ):
                for link in live:
                    try:
                        self._send(
                            link,
                            MessageType.ROUND,
                            round_fields,
                            {"params": global_params},
                            dtype=self.wire_dtype,
                            round_idx=plan.round_idx,
                        )
                    except OSError:
                        self._bury(link, pending, None)
                self._refill_survivors(pending, plan.round_idx, None, remaining)

        # Driver-side malicious work overlaps with the worker fan-out, same
        # as the thread backend: attacks keep their cross-round state here.
        for task in plan.malicious_tasks:
            yield run_malicious_task(ctx, task, global_params, self._get_driver_model())
        if not benign:
            return

        sel = selectors.DefaultSelector()
        for link in self.workers:
            sel.register(link.sock, selectors.EVENT_READ, link)
        try:
            while remaining:
                for key, _events in sel.select():
                    link: _WorkerLink = key.data
                    try:
                        msg, fields, arrays = self._recv(link, round_idx=plan.round_idx)
                    except ConnectionClosed:
                        self._bury(link, pending, sel)
                        self._refill_survivors(pending, plan.round_idx, sel, remaining)
                        continue
                    if msg is MessageType.ERROR:
                        raise RuntimeError(
                            f"distributed worker task failed:\n{fields.get('traceback')}"
                        )
                    if msg is not MessageType.UPDATE:
                        raise ProtocolError(f"expected UPDATE, got {msg.name}")
                    order = fields["order"]
                    self._merge_worker_telemetry(link, fields, plan, pending)
                    link.outstanding.pop(order, None)
                    if not self._fill(link, pending, plan.round_idx):
                        # The worker died as we topped it up (EPIPE on send):
                        # same cleanup as a death detected on the recv side.
                        self._bury(link, pending, sel)
                        self._refill_survivors(pending, plan.round_idx, sel, remaining)
                    task = remaining.pop(order, None)
                    if task is None:
                        # Already completed before a re-dispatch raced it.
                        continue
                    yield ClientResult(
                        task=task,
                        update=arrays["update"],
                        loss=fields.get("loss"),
                        # Masked at the source: ``make_update`` must not mask
                        # this vector a second time.
                        extras={"secagg_masked": True} if fields.get("masked") else {},
                    )
        finally:
            sel.close()

    def _merge_worker_telemetry(
        self, link: _WorkerLink, fields: dict, plan: RoundPlan, pending: deque
    ) -> None:
        """Fold one UPDATE frame's profiling blob into the driver's trace.

        The worker's ``train_s`` becomes a ``client_train`` span ending at
        the frame's receipt (``wire=True`` marks the reconstruction); its
        ``mono`` send timestamp yields the per-link clock-offset estimate
        (driver minus worker clock, minimum over frames — an annotation for
        reading cross-host traces, never a correction).  Queue-depth
        histograms are observed per receipt whether or not the worker sent a
        blob, so driver-side congestion is visible even against v4 workers
        with profiling declined.
        """
        tel = self.ctx.telemetry
        if tel is None:
            return
        blob = fields.get("telemetry")
        if blob:
            now = tel.tracer.now()
            attrs = {
                "round": plan.round_idx,
                "client": fields.get("client"),
                "worker": link.pid,
                "wire": True,
            }
            for extra in ("mask_s", "context_build_s"):
                if blob.get(extra) is not None:
                    attrs[extra] = blob[extra]
            train_s = float(blob.get("train_s", 0.0))
            tel.tracer.add_span("client_train", now - train_s, now, **attrs)
            mono = blob.get("mono")
            if mono is not None:
                tel.record_clock_offset(f"worker:{link.pid}", now - float(mono))
        metrics = tel.metrics
        metrics.histogram("distributed.pending_depth").observe(len(pending))
        metrics.histogram("distributed.worker_outstanding").observe(
            len(link.outstanding)
        )

    def _fill(self, link: _WorkerLink, pending: deque, round_idx: int) -> bool:
        """Top the worker's pipeline up to :data:`PIPELINE_DEPTH` tasks.

        Returns ``False`` when the worker died mid-send; the caller must
        then run :meth:`_bury` (and usually :meth:`_refill_survivors`) —
        ``_fill`` itself only puts the undelivered task back.
        """
        while link.alive and pending and len(link.outstanding) < PIPELINE_DEPTH:
            task = pending.popleft()
            fields = {
                "order": task.order,
                "client": task.client_id,
                "round": round_idx,
                "rng_seed": task.rng_seed,
            }
            state = self.ctx.algorithm.client_benign_state(task.client_id)
            arrays = {"state": state} if state is not None else None
            try:
                self._send(link, MessageType.TASK, fields, arrays,
                           dtype=self.wire_dtype, round_idx=round_idx)
            except OSError:
                pending.appendleft(task)
                return False
            link.outstanding[task.order] = task
        return True

    def _bury(self, link: _WorkerLink, pending: deque, sel) -> None:
        """Clean up one dead worker: deregister, close, re-queue its tasks."""
        if sel is not None:
            try:
                sel.unregister(link.sock)
            except (KeyError, ValueError):
                pass  # never registered, or already deregistered
        link.close()
        if link.proc is not None:
            link.proc.poll()
        if link.outstanding:
            self.redispatch_count += len(link.outstanding)
            for task in sorted(link.outstanding.values(), key=lambda t: t.order):
                pending.appendleft(task)
            link.outstanding.clear()

    def _refill_survivors(
        self, pending: deque, round_idx: int, sel, remaining: dict
    ) -> None:
        """Redistribute pending tasks, burying any worker that dies mid-send.

        Loops until the surviving pipelines are topped up with no further
        deaths; raises when no worker is left but tasks still are.
        """
        while True:
            survivors = self.workers
            if not survivors and remaining:
                raise RuntimeError(
                    f"all distributed workers died with {len(remaining)} "
                    "tasks unfinished"
                )
            dead = next(
                (
                    link
                    for link in survivors
                    if not self._fill(link, pending, round_idx)
                ),
                None,
            )
            if dead is None:
                return
            self._bury(dead, pending, sel)

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and reap spawned processes (idempotent).

        Like the pool backends, a closed coordinator is reusable: the next
        round respawns (or re-attaches) its workers lazily.
        """
        for link in self._links:
            if link.alive:
                try:
                    self._send(link, MessageType.SHUTDOWN, {})
                except OSError:
                    pass
            link.close()
            if link.proc is not None:
                try:
                    link.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    link.proc.kill()
                    link.proc.wait()
                if link.proc.stdout is not None:
                    link.proc.stdout.close()
        self._links = []
        self._started = False


def _parse_addresses(connect) -> tuple[tuple[str, int], ...]:
    """Normalise ``connect`` into ``(host, port)`` pairs.

    Accepts a list of ``"host:port"`` strings or one comma-separated string
    (the form a ``backend="distributed:connect='h1:p1,h2:p2'"`` spec or a
    scenario's ``backend_kwargs`` carries through JSON).
    """
    if connect is None:
        return ()
    if isinstance(connect, str):
        connect = [part for part in connect.split(",") if part.strip()]
    addresses = []
    for item in connect:
        host, sep, port_text = str(item).strip().rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"malformed worker address {item!r}; expected 'host:port'"
            )
        try:
            addresses.append((host, int(port_text)))
        except ValueError as exc:
            raise ValueError(
                f"malformed worker address {item!r}; expected 'host:port'"
            ) from exc
    return tuple(addresses)
