"""Wire protocol of the distributed execution subsystem.

Everything crossing a coordinator↔worker socket is a *frame*::

    +-------+---------+------+----------------+---------+
    | magic | version | type | payload length | payload |
    |  2 B  |   1 B   | 1 B  |   4 B (BE)     |  ...    |
    +-------+---------+------+----------------+---------+

and every payload is a *message*: a 4-byte length-prefixed JSON header
followed by zero or more named float vectors, concatenated in the order the
header's ``_arrays`` list declares them.  Vectors use the canonical encoding
of :func:`repro.nn.serialization.vector_to_bytes`; the header's ``_dtype``
field names the wire dtype of every vector in the message.  The default —
raw little-endian float64 — round-trips bit-for-bit, which is what lets
``backend="distributed"`` equal ``backend="serial"`` per seed; ``float32``
is a lossy opt-in that halves wire traffic (see
:data:`repro.nn.serialization.WIRE_DTYPES`).

The message types mirror a round's life cycle: a worker announces itself
with ``HELLO``; the coordinator installs the execution context with
``CONFIGURE`` (acknowledged by ``CONFIGURED``), broadcasts the round's
global parameters with ``ROUND``, and dispatches ``TASK`` frames; the
worker streams an ``UPDATE`` frame back per task the moment it is computed
(or ``ERROR`` with a traceback); ``SHUTDOWN`` ends the session.

The module depends only on the standard library plus the vector codec, so
both sides of the wire — and any future non-Python tooling reading the
frames — share one small surface.
"""

from __future__ import annotations

import enum
import hashlib
import json
import socket
import struct

import numpy as np

from repro.nn.serialization import vector_from_bytes, vector_to_bytes, wire_dtype

#: Bumped on any incompatible change to framing or message layout; both
#: sides refuse to talk across versions instead of mis-parsing frames.
#: Version 2 added the ``_dtype`` header field (fp32 wire format).
#: Version 3 added secure aggregation: ``ROUND`` may carry a ``secagg``
#: header field ({seed, participants}) instructing workers to mask, and a
#: masked ``UPDATE`` declares itself with ``masked: true`` — its vector is
#: ciphertext (IEEE-754 words plus the client's round mask mod 2**64)
#: riding the float64 transport, which a v2 peer would mis-read as numbers.
#: Version 4 added worker-side profiling: ``ROUND`` may carry
#: ``telemetry: true``, asking workers to time their phases; each ``UPDATE``
#: then carries a compact ``telemetry`` blob ({train_s, mask_s?,
#: context_build_s?, mono}) the coordinator merges into the driver's trace,
#: using ``mono`` (the worker's monotonic send timestamp) for a per-link
#: clock-offset estimate.  Strictly observational — the blob never feeds
#: back into aggregation.
PROTOCOL_VERSION = 4

_MAGIC = b"RW"
_HEADER = struct.Struct(">2sBBI")
_JSON_LEN = struct.Struct(">I")

#: Upper bound on a single frame's payload (guards against garbage length
#: prefixes allocating unbounded buffers): 1 GiB ≈ a 134M-parameter update.
MAX_PAYLOAD = 1 << 30


class MessageType(enum.IntEnum):
    """Frame types, in round-trip order of a typical session."""

    HELLO = 1        # worker → coordinator: {version, pid}
    CONFIGURE = 2    # coordinator → worker: {fingerprint, scenario}
    CONFIGURED = 3   # worker → coordinator: {fingerprint}
    ROUND = 4        # coordinator → worker: {round} + params vector
    TASK = 5         # coordinator → worker: task fields (+ optional state)
    UPDATE = 6       # worker → coordinator: {order, client, loss} + update
    ERROR = 7        # worker → coordinator: {traceback, order?}
    SHUTDOWN = 8     # coordinator → worker: {}


class ProtocolError(RuntimeError):
    """A frame violated the protocol (bad magic, version, type or layout)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the socket (mid-frame or between frames)."""


# -- message codec ----------------------------------------------------------


def encode_message(
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
    dtype: str = "float64",
) -> bytes:
    """Serialise a JSON-able field dict plus named float vectors.

    ``dtype`` picks the wire encoding of every vector in the message (see
    :data:`repro.nn.serialization.WIRE_DTYPES`); it is recorded in the
    header's reserved ``_dtype`` field whenever arrays are present, so the
    decoder never guesses element sizes.
    """
    arrays = arrays or {}
    header = dict(fields)
    for reserved in ("_arrays", "_dtype"):
        if reserved in header:
            raise ValueError(f"{reserved!r} is reserved for the codec")
    wire_dtype(dtype)  # fail fast on unknown tags, before any bytes move
    header["_arrays"] = [[name, int(arrays[name].shape[0])] for name in arrays]
    if arrays:
        header["_dtype"] = dtype
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    chunks = [_JSON_LEN.pack(len(header_bytes)), header_bytes]
    chunks.extend(vector_to_bytes(arrays[name], dtype=dtype) for name in arrays)
    return b"".join(chunks)


def message_size(
    fields: dict,
    arrays: dict[str, int] | None = None,
    dtype: str = "float64",
) -> tuple[int, int]:
    """Frame-size accounting without materialising the frame.

    ``arrays`` maps vector names to their *lengths* (element counts), so no
    array bytes are copied.  Returns ``(overhead_bytes, vector_bytes)``:
    overhead is the frame header plus the length-prefixed JSON envelope —
    computed through the same canonical ``json.dumps`` as
    :func:`encode_message`, so the split is exact — and vector_bytes is the
    raw payload of the declared vectors at the given wire dtype.  This is
    what the communication ledger records per frame.
    """
    arrays = arrays or {}
    header = dict(fields)
    header["_arrays"] = [[name, int(length)] for name, length in arrays.items()]
    if arrays:
        header["_dtype"] = dtype
    header_bytes = len(json.dumps(header, separators=(",", ":")).encode("utf-8"))
    itemsize = wire_dtype(dtype).itemsize
    vector_bytes = sum(int(length) for length in arrays.values()) * itemsize
    return _HEADER.size + _JSON_LEN.size + header_bytes, vector_bytes


def decode_message(payload: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Inverse of :func:`encode_message`.

    Array payload slices are zero-copy ``memoryview``s into ``payload``;
    the one copy per vector happens inside :func:`vector_from_bytes` when it
    converts to a writable float64 array.
    """
    if len(payload) < _JSON_LEN.size:
        raise ProtocolError("message payload shorter than its header prefix")
    (header_len,) = _JSON_LEN.unpack_from(payload)
    offset = _JSON_LEN.size
    if len(payload) < offset + header_len:
        raise ProtocolError("message payload shorter than its declared header")
    view = memoryview(payload)
    fields = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
    offset += header_len
    dtype = fields.pop("_dtype", "float64")
    try:
        itemsize = wire_dtype(dtype).itemsize
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    arrays: dict[str, np.ndarray] = {}
    for name, length in fields.pop("_arrays", []):
        nbytes = int(length) * itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(f"array {name!r} truncated in message payload")
        arrays[name] = vector_from_bytes(view[offset : offset + nbytes], dtype=dtype)
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(f"{len(payload) - offset} trailing bytes in message")
    return fields, arrays


# -- frame I/O --------------------------------------------------------------


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except ConnectionError as exc:
            # A killed peer surfaces as RST, not EOF; same meaning here.
            raise ConnectionClosed(f"peer connection lost: {exc}") from exc
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(
    sock: socket.socket,
    msg_type: MessageType,
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
    dtype: str = "float64",
) -> None:
    """Frame and send one message (blocking, atomic via ``sendall``)."""
    payload = encode_message(fields, arrays, dtype=dtype)
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    header = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, int(msg_type), len(payload))
    sock.sendall(header + payload)


def recv_message(
    sock: socket.socket,
    meter=None,
) -> tuple[MessageType, dict, dict[str, np.ndarray]]:
    """Receive one frame; raises :class:`ConnectionClosed` on EOF.

    ``meter``, when given, is called once per successfully decoded frame as
    ``meter(msg, overhead_bytes, vector_bytes)`` with the same split
    :func:`message_size` computes on the send side — the receive half of the
    communication ledger's wire accounting.  Metering is observation only:
    it never changes what crosses the wire.
    """
    magic, version, msg_type, length = _HEADER.unpack(recv_exact(sock, _HEADER.size))
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}, this side speaks "
            f"{PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"declared payload of {length} bytes exceeds MAX_PAYLOAD")
    try:
        msg = MessageType(msg_type)
    except ValueError as exc:
        raise ProtocolError(f"unknown message type {msg_type}") from exc
    payload = recv_exact(sock, length)
    fields, arrays = decode_message(payload)
    if meter is not None:
        (header_len,) = _JSON_LEN.unpack_from(payload)
        envelope = _JSON_LEN.size + header_len
        meter(msg, _HEADER.size + envelope, length - envelope)
    return msg, fields, arrays


# -- execution-context payloads ---------------------------------------------

#: The scenario fields a worker needs to rebuild the benign execution
#: context (federation, model factory, algorithm, local-training config).
#: Deliberately excludes attack/defense/round-count fields so re-running a
#: scenario with a different defense reuses a standalone worker's cache.
CONTEXT_FIELDS = (
    "dataset",
    "dataset_kwargs",
    "num_clients",
    "samples_per_client",
    "alpha",
    "num_classes",
    "image_size",
    "data_seed",
    "model",
    "model_kwargs",
    "hidden",
    "algorithm",
    "algorithm_kwargs",
    "local",
    "seed",
)


def context_payload(scenario_dict: dict) -> dict:
    """Project a scenario dict onto the fields a worker context needs."""
    return {key: scenario_dict[key] for key in CONTEXT_FIELDS if key in scenario_dict}


def context_fingerprint(payload: dict) -> str:
    """Stable identity of a worker context; the worker's cache key."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
