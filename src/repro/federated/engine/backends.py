"""Execution backends: how a round plan's client work actually runs.

The server is backend-agnostic: it builds a :class:`RoundPlan` and asks an
:class:`ExecutionBackend` for the :class:`ClientResult` list in aggregation
order.  Three backends are provided:

* :class:`SerialBackend` — one worker model, clients in order; bit-identical
  to the historical round loop and the default.
* :class:`ThreadPoolBackend` — benign clients fan out over a thread pool with
  a per-thread model pool.  NumPy releases the GIL inside its kernels, so
  multi-core machines overlap client training.
* :class:`ProcessPoolBackend` — benign clients fan out over forked worker
  processes.  The pool is forked *per round* so workers always see the
  current algorithm state (e.g. FedDC drift); this sidesteps pickling of
  closure-based model factories and keeps results identical to serial.

Malicious updates are always computed in the driver process, in task order:
attacks are stateful by contract (``MRepl.attacked_rounds``, CollaPois'
``psi_history``) and their cross-round state must live where the server can
see it.  Benign updates only *read* shared state (dataset, algorithm state,
global parameters), which is what makes them safe to parallelise.

Because every task draws randomness exclusively from its own
``(seed, round, client)`` stream (see :mod:`repro.federated.rng`), all three
backends produce bit-identical :class:`~repro.federated.history.TrainingHistory`
objects for the same run seed.  The one exception: models whose layers carry
internal RNG state (``Dropout``) consume that state in backend-dependent
order and void the guarantee — keep such models on the serial backend (the
experiment runner's model factories are dropout-free by default).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, replace

import numpy as np

from repro.data.federated_data import FederatedDataset
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.plan import ClientResult, ClientTask, ClientUpdate, RoundPlan
from repro.registry import BACKENDS


@dataclass
class EngineContext:
    """Everything a backend needs to execute client tasks.

    ``secagg_seed`` enables secure aggregation: when set, every update
    leaving the execution engine is masked with its client's aggregate
    round mask (:mod:`repro.federated.secagg.masking`) before anything
    server-side — hooks, retained lists, the aggregator API — can observe
    it.  The seed is the run seed; mask streams are derived per
    ``(seed, round, pair)``, so remote workers and driver-side backends
    produce identical masked bytes.

    ``telemetry`` is the run's :class:`~repro.telemetry.core.RunTelemetry`
    bundle when span tracing is enabled (``None`` otherwise): task
    execution and dispatch points record spans through it.  Observation
    only — no backend may read it to change what it computes.
    """

    dataset: FederatedDataset
    model_factory: Callable[[], object]
    algorithm: FederatedAlgorithm
    local_config: LocalTrainingConfig
    attack: object | None = None
    secagg_seed: int | None = None
    telemetry: object | None = None


def telemetry_span(ctx: EngineContext, name: str, **attrs):
    """Span context manager via the context's telemetry; no-op when off."""
    tel = ctx.telemetry
    if tel is None:
        return nullcontext()
    return tel.tracer.span(name, **attrs)


def run_benign_task(
    ctx: EngineContext, task: ClientTask, global_params: np.ndarray, model
) -> ClientResult:
    """Execute one benign client task on the given scratch model."""
    with telemetry_span(
        ctx, "client_train", round=task.round_idx, client=task.client_id
    ):
        update, loss = ctx.algorithm.benign_update(
            task.client_id,
            model,
            global_params,
            ctx.dataset.client(task.client_id).train,
            ctx.local_config,
            task.rng(),
        )
    return ClientResult(task=task, update=update, loss=loss)


def run_malicious_task(
    ctx: EngineContext, task: ClientTask, global_params: np.ndarray, model
) -> ClientResult:
    """Execute one compromised client task through the active attack."""
    if ctx.attack is None:
        raise RuntimeError("malicious task scheduled without an active attack")
    with telemetry_span(
        ctx, "client_train",
        round=task.round_idx, client=task.client_id, malicious=True,
    ):
        update = ctx.attack.compute_update(
            client_id=task.client_id,
            global_params=global_params,
            round_idx=task.round_idx,
            model=model,
            rng=task.rng(),
        )
    return ClientResult(task=task, update=update, loss=None)


class ExecutionBackend:
    """Strategy interface for executing a round plan's client work."""

    name = "base"

    # Capability flags, surfaced by ``repro list backends``:
    #: ``iter_updates`` yields as clients finish (vs a per-round barrier).
    streaming_updates = False
    #: Client work runs in other OS processes (own interpreter + memory).
    process_isolation = False
    #: Workers may live on other hosts, reached over sockets.
    distributed = False
    #: Benign clients train as one stacked model (cross-client GEMM batching).
    batched_execution = False

    #: Optional :class:`~repro.federated.engine.ledger.CommunicationLedger`
    #: installed by the experiment runner; backends with a real transport
    #: (the distributed coordinator) meter their wire frames into it.
    ledger = None

    def __init__(self) -> None:
        self._ctx: EngineContext | None = None
        self._driver_model = None

    @property
    def ctx(self) -> EngineContext:
        if self._ctx is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a server")
        return self._ctx

    def bind(self, ctx: EngineContext) -> None:
        """Attach the backend to a server's execution context."""
        self._ctx = ctx
        # Rebinding to a different server must drop models built by the
        # previous server's factory.
        self._driver_model = None

    def execute(self, plan: RoundPlan, global_params: np.ndarray) -> list[ClientResult]:
        """Run every task in ``plan`` and return results in aggregation order."""
        ctx = self.ctx
        # Kick off benign work first: parallel backends submit it to their
        # pool eagerly and hand back a lazy iterable, so driver-side
        # malicious computation (which can be real training — DPois/DBA run
        # local_train per compromised client) overlaps with the pool instead
        # of stalling it.
        benign_pending = self._start_benign(plan.benign_tasks, global_params)
        results: dict[int, ClientResult] = {}
        # Malicious tasks run in the driver so stateful attacks keep their
        # cross-round bookkeeping (MRepl.attacked_rounds, psi_history).
        for task in plan.malicious_tasks:
            results[task.order] = run_malicious_task(
                ctx, task, global_params, self._get_driver_model()
            )
        for result in benign_pending:
            results[result.task.order] = result
        return [results[order] for order in range(len(plan))]

    def iter_updates(
        self, plan: RoundPlan, global_params: np.ndarray
    ) -> Iterator[ClientUpdate]:
        """Yield the plan's :class:`ClientUpdate` objects as they complete.

        The streaming counterpart of :meth:`execute`: the server folds each
        yielded update into the aggregator online instead of waiting for the
        full round.  Updates may arrive in *any* order — consumers key on
        ``update.slot`` for the canonical aggregation order (the
        :class:`~repro.defenses.base.Aggregator` base class does this
        automatically).  The base implementation is a barrier (it runs
        :meth:`execute` and yields the finished results, which is what the
        per-round-forked process backend wants); serial and thread backends
        override it to yield as clients finish.
        """
        for result in self.execute(plan, global_params):
            yield self.make_update(result, plan)

    def make_update(self, result: ClientResult, plan: RoundPlan) -> ClientUpdate:
        """Wrap an executed result with its client's dataset weight.

        The single choke point where results leave the execution engine:
        under secure aggregation (``ctx.secagg_seed``) the update vector is
        masked here — in the client's stead — unless the result is already
        masked at the source (``secagg_masked`` extra, set by the
        distributed coordinator whose workers mask before the bytes ever
        reach a socket).  All round participants mask, compromised clients
        included: an unmasked participant would leave its pairwise terms
        uncancelled in the sum.
        """
        seed = self.ctx.secagg_seed
        if seed is not None and not result.extras.get("secagg_masked"):
            # Imported lazily: the secagg package pulls in plan/defense
            # modules and is only needed when masking is actually on.
            from repro.federated.secagg.masking import mask_update

            with telemetry_span(
                self.ctx, "secagg_mask",
                round=plan.round_idx, client=result.client_id,
            ):
                masked = mask_update(
                    result.update, seed, plan.round_idx, result.client_id,
                    plan.sampled_clients,
                )
            result = ClientResult(
                task=result.task,
                update=masked,
                loss=result.loss,
                extras={**result.extras, "secagg_masked": True},
            )
        return ClientUpdate.from_result(
            result,
            num_examples=len(self.ctx.dataset.client(result.client_id).train),
        )

    def _start_benign(
        self, tasks: tuple[ClientTask, ...], global_params: np.ndarray
    ) -> Iterable[ClientResult]:
        """Begin executing the benign tasks; the return value may be lazy."""
        raise NotImplementedError

    def _get_driver_model(self):
        if self._driver_model is None:
            self._driver_model = self.ctx.model_factory()
        return self._driver_model

    def close(self) -> None:
        """Release worker resources (idempotent)."""


@BACKENDS.register("serial")
class SerialBackend(ExecutionBackend):
    """Default backend: every client runs in order on one scratch model.

    ``batch_clients`` (optional) routes benign tasks through the cross-client
    batched runner (:mod:`repro.federated.engine.batched`) in groups of at
    most that many clients — a middle ground between fully serial execution
    and the dedicated ``batched`` backend, with the same bit-identity
    guarantee.  ``batch_clients=1`` (or ``None``) keeps the plain path.
    """

    name = "serial"
    streaming_updates = True

    def __init__(self, batch_clients: int | None = None) -> None:
        super().__init__()
        if batch_clients is not None and batch_clients <= 0:
            raise ValueError("batch_clients must be positive")
        self.batch_clients = batch_clients
        self._batched_runner = None

    def bind(self, ctx: EngineContext) -> None:
        super().bind(ctx)
        self._batched_runner = None

    def _get_batched_runner(self):
        if self._batched_runner is None:
            # Imported lazily: batched.py imports this module.
            from repro.federated.engine.batched import BatchedClientRunner

            self._batched_runner = BatchedClientRunner(
                self.ctx, max_group=self.batch_clients
            )
        return self._batched_runner

    def _start_benign(self, tasks, global_params):
        if self.batch_clients is not None and self.batch_clients > 1:
            return self._get_batched_runner().run(tasks, global_params)
        ctx = self.ctx
        model = self._get_driver_model()
        # Lazy on purpose: benign work runs while execute() drains the
        # iterator, after the (shared-scratch-model) malicious tasks finished.
        return (run_benign_task(ctx, task, global_params, model) for task in tasks)

    def iter_updates(self, plan, global_params):
        # Same computation order as execute() — malicious first on the shared
        # scratch model, then benign in task order — but each update is
        # yielded the moment it exists instead of after the round barrier.
        ctx = self.ctx
        model = self._get_driver_model()
        for task in plan.malicious_tasks:
            yield self.make_update(run_malicious_task(ctx, task, global_params, model), plan)
        if self.batch_clients is not None and self.batch_clients > 1:
            for result in self._get_batched_runner().run(plan.benign_tasks, global_params):
                yield self.make_update(result, plan)
            return
        for task in plan.benign_tasks:
            yield self.make_update(run_benign_task(ctx, task, global_params, model), plan)


@BACKENDS.register("thread")
class ThreadPoolBackend(ExecutionBackend):
    """Fan benign clients out over threads with a pooled set of models."""

    name = "thread"
    streaming_updates = True

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._executor: ThreadPoolExecutor | None = None
        self._models: queue.LifoQueue = queue.LifoQueue()

    def bind(self, ctx: EngineContext) -> None:
        super().bind(ctx)
        self._models = queue.LifoQueue()

    def _borrow_model(self):
        try:
            return self._models.get_nowait()
        except queue.Empty:
            # At most one model per in-flight task ever gets created, so the
            # pool is bounded by ``max_workers``.
            return self.ctx.model_factory()

    def _run_pooled(self, task: ClientTask, global_params: np.ndarray) -> ClientResult:
        model = self._borrow_model()
        try:
            return run_benign_task(self.ctx, task, global_params, model)
        finally:
            self._models.put(model)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="fed-client"
            )
        return self._executor

    def _start_benign(self, tasks, global_params):
        # map() submits every task immediately; the returned iterator is
        # drained by execute() after the driver-side malicious work.
        return self._ensure_executor().map(
            lambda task: self._run_pooled(task, global_params), tasks
        )

    def iter_updates(self, plan, global_params):
        # Submit the benign fan-out first, overlap driver-side malicious
        # computation with the pool, then yield benign updates in completion
        # order via as_completed — this is what lets streaming aggregation
        # start folding while slow clients are still training.
        executor = self._ensure_executor()
        with telemetry_span(
            self.ctx, "dispatch",
            round=plan.round_idx, tasks=len(plan.benign_tasks), backend="thread",
        ):
            futures = [
                executor.submit(self._run_pooled, task, global_params)
                for task in plan.benign_tasks
            ]
        ctx = self.ctx
        for task in plan.malicious_tasks:
            yield self.make_update(
                run_malicious_task(ctx, task, global_params, self._get_driver_model()),
                plan,
            )
        for future in as_completed(futures):
            yield self.make_update(future.result(), plan)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


# Fork-inherited state for ProcessPoolBackend workers.  Set in the parent
# immediately before the per-round pool is forked; children read their
# inherited snapshot, so no pickling of datasets/factories is needed (pool
# initargs would be pickled, which the closure-based model factories are
# not).  The module-global handoff is guarded by _FORK_LOCK so concurrent
# process-backend rounds in one parent process serialize instead of forking
# each other's state.
_FORK_STATE: tuple[EngineContext, np.ndarray] | None = None
_FORK_MODEL = None
_FORK_LOCK = threading.Lock()


def _fork_run_task(task: ClientTask) -> ClientResult:
    global _FORK_MODEL
    if _FORK_STATE is None:
        raise RuntimeError("worker process has no inherited engine state")
    ctx, global_params = _FORK_STATE
    if _FORK_MODEL is None:
        _FORK_MODEL = ctx.model_factory()
    return run_benign_task(ctx, task, global_params, _FORK_MODEL)


@BACKENDS.register("process")
class ProcessPoolBackend(ExecutionBackend):
    """Fan benign clients out over forked worker processes.

    The pool is created (forked) at the start of every round and torn down at
    the end of it, so workers always inherit the *current* algorithm state —
    FedDC's drift vectors change every round and a long-lived pool would act
    on stale state.  Forking also sidesteps pickling: the closure-based model
    factories used by the experiment runner are not picklable, but a forked
    child inherits them.  Requires a platform with the ``fork`` start method
    (Linux/macOS); :meth:`bind` raises elsewhere.
    """

    name = "process"
    process_isolation = True  # streaming_updates stays False: per-round fork
    # makes iter_updates a barrier (see ROADMAP's long-lived-worker item).

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def bind(self, ctx: EngineContext) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessPoolBackend requires the 'fork' start method; "
                "use ThreadPoolBackend on this platform"
            )
        super().bind(ctx)

    def _start_benign(self, tasks, global_params):
        # Eager by design: the per-round pool must be torn down before the
        # results are used, and fork/teardown dominates any overlap gains.
        global _FORK_STATE
        if not tasks:
            return []
        workers = min(self.max_workers, len(tasks))
        with _FORK_LOCK:
            # Children record spans into forked copies of the tracer that die
            # with the process, so strip telemetry from the inherited context
            # and record one driver-side span covering the whole pool instead.
            _FORK_STATE = (replace(self.ctx, telemetry=None), global_params)
            try:
                mp_ctx = multiprocessing.get_context("fork")
                with telemetry_span(
                    self.ctx, "client_train",
                    round=tasks[0].round_idx, tasks=len(tasks), processes=workers,
                ):
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=mp_ctx
                    ) as pool:
                        chunksize = max(1, len(tasks) // workers)
                        return list(
                            pool.map(_fork_run_task, tasks, chunksize=chunksize)
                        )
            finally:
                _FORK_STATE = None


def available_backends() -> list[str]:
    """Names of every registered execution backend."""
    return BACKENDS.names()


def make_backend(
    name: str, max_workers: int | None = None, **kwargs
) -> ExecutionBackend:
    """Instantiate an execution backend by name or spec.

    ``max_workers`` is the single place the worker-cap special case lives:
    ``None`` means "backend default" and is simply not passed on, so the
    serial backend (which takes no worker cap) and the pool backends share
    one construction path.
    """
    if max_workers is not None:
        kwargs["max_workers"] = max_workers
    return BACKENDS.create(name, **kwargs)
