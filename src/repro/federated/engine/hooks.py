"""Typed round-pipeline hooks.

Instead of hard-wiring evaluation (or any other instrumentation) into the
server's round loop, the server dispatches five typed events per round:

``on_round_start``
    after sampling, before any client work — receives the :class:`RoundPlan`.
``on_update``
    once per client as its :class:`~repro.federated.engine.plan.ClientUpdate`
    becomes available, between ``on_round_start`` and
    ``on_updates_collected``.  On the server's streaming path updates arrive
    in *completion* order (out-of-order under parallel backends); on the
    buffered path they are replayed in sampled-slot order after the round
    barrier.  The event only fires when some registered hook implements it.
``on_updates_collected``
    after every client update for the round is available, before aggregation
    is finalized.  On the buffered path ``results`` is the
    :class:`ClientResult` list in aggregation order (as before); on the
    streaming path it is the retained :class:`ClientUpdate` list in
    sampled-slot order — and it is only materialised if some hook (or the
    training algorithm) actually consumes it, so pure streaming rounds keep
    O(param_dim) memory.
``on_aggregated``
    after the aggregated update was applied to the global model.
``on_round_end``
    after the :class:`~repro.federated.history.RoundRecord` was created and
    appended; hooks may enrich the record in place (the built-in
    :class:`EvaluationHook` fills in accuracy metrics this way).

Hooks run in registration order; exceptions propagate (a broken hook should
fail the run loudly, not corrupt a result silently).  When a hook raises
mid-round — notably in ``on_update``, while a streaming aggregation fold is
in flight — the server calls :meth:`~repro.defenses.base.Aggregator.abort`
on the half-folded round state before re-raising, so sharded fold workers
are released and the aggregator can begin a fresh round afterwards
(pinned in ``tests/federated/test_hooks.py``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

import numpy as np

from repro.federated.engine.plan import ClientResult, ClientUpdate, RoundPlan
from repro.federated.history import RoundRecord


class RoundHook:
    """Base class for round-pipeline observers; override any subset."""

    def on_round_start(self, server, plan: RoundPlan) -> None:
        """Called after sampling, before client execution."""

    def on_update(self, server, plan: RoundPlan, update: ClientUpdate) -> None:
        """Called once per client update as it becomes available."""

    def on_updates_collected(
        self, server, plan: RoundPlan, results: list[ClientResult] | list[ClientUpdate]
    ) -> None:
        """Called once every client result for the round is available.

        The element type follows the server's active path: ``ClientResult``
        on the buffered path, ``ClientUpdate`` on the streaming path (the
        default with a streaming-capable defense).  Both expose
        ``client_id``/``malicious``/``update``/``loss``; hooks needing more
        should key off those shared fields or pin ``streaming="off"``.
        """

    def on_aggregated(self, server, plan: RoundPlan, aggregated: np.ndarray) -> None:
        """Called after the aggregated update was applied to the global model."""

    def on_round_end(self, server, plan: RoundPlan, record: RoundRecord) -> None:
        """Called with the round's record; hooks may enrich it in place."""

    # The server asks before materialising per-update events / the full
    # results list so that pure streaming rounds don't pay for observers
    # nobody registered.  Subclasses are detected automatically; only
    # adapter-style hooks (CallbackHook) need to override these.

    def wants_update_events(self) -> bool:
        return type(self).on_update is not RoundHook.on_update

    def wants_collected_results(self) -> bool:
        return type(self).on_updates_collected is not RoundHook.on_updates_collected


class HookPipeline:
    """Ordered collection of :class:`RoundHook` instances."""

    def __init__(self, hooks: Iterable[RoundHook] = ()) -> None:
        self._hooks: list[RoundHook] = list(hooks)

    def add(self, hook: RoundHook) -> RoundHook:
        self._hooks.append(hook)
        return hook

    def insert(self, index: int, hook: RoundHook) -> RoundHook:
        self._hooks.insert(index, hook)
        return hook

    def remove(self, hook: RoundHook) -> None:
        self._hooks.remove(hook)

    def __iter__(self) -> Iterator[RoundHook]:
        return iter(self._hooks)

    def __len__(self) -> int:
        return len(self._hooks)

    def wants_update_events(self) -> bool:
        return any(hook.wants_update_events() for hook in self._hooks)

    def wants_collected_results(self) -> bool:
        return any(hook.wants_collected_results() for hook in self._hooks)

    def round_start(self, server, plan: RoundPlan) -> None:
        for hook in self._hooks:
            hook.on_round_start(server, plan)

    def update(self, server, plan: RoundPlan, update: ClientUpdate) -> None:
        for hook in self._hooks:
            hook.on_update(server, plan, update)

    def updates_collected(
        self, server, plan: RoundPlan, results: list[ClientResult] | list[ClientUpdate]
    ) -> None:
        for hook in self._hooks:
            hook.on_updates_collected(server, plan, results)

    def aggregated(self, server, plan: RoundPlan, aggregated: np.ndarray) -> None:
        for hook in self._hooks:
            hook.on_aggregated(server, plan, aggregated)

    def round_end(self, server, plan: RoundPlan, record: RoundRecord) -> None:
        for hook in self._hooks:
            hook.on_round_end(server, plan, record)


class EvaluationHook(RoundHook):
    """Periodic evaluation of the global model, recorded on the round record.

    ``eval_fn(global_params, round_idx)`` returns a metrics dict; the keys
    ``benign_accuracy`` and ``attack_success_rate`` are promoted to the
    record's typed fields and the full dict lands in ``record.extras``.

    ``every=None`` defers the period to ``server.config.eval_every`` at round
    time (the historical server semantics: assigning ``eval_fn`` before
    enabling ``eval_every`` is fine, and evaluation stays off while
    ``eval_every`` is unset).
    """

    def __init__(
        self,
        eval_fn: Callable[[np.ndarray, int], dict],
        every: int | None = 1,
    ) -> None:
        if every is not None and every <= 0:
            raise ValueError("every must be positive")
        self.eval_fn = eval_fn
        self.every = every

    def on_round_end(self, server, plan: RoundPlan, record: RoundRecord) -> None:
        every = self.every
        if every is None:
            every = getattr(server.config, "eval_every", None)
        if not every or (record.round_idx + 1) % every:
            return
        tel = getattr(server, "telemetry", None)
        if tel is not None:
            with tel.tracer.span("evaluate", round=record.round_idx):
                metrics = self.eval_fn(server.global_params, record.round_idx)
        else:
            metrics = self.eval_fn(server.global_params, record.round_idx)
        record.benign_accuracy = metrics.get("benign_accuracy")
        record.attack_success_rate = metrics.get("attack_success_rate")
        record.extras.update(metrics)


class CallbackHook(RoundHook):
    """Adapter turning plain callables into a hook (handy for tests/scripts)."""

    def __init__(
        self,
        on_round_start: Callable | None = None,
        on_update: Callable | None = None,
        on_updates_collected: Callable | None = None,
        on_aggregated: Callable | None = None,
        on_round_end: Callable | None = None,
    ) -> None:
        self._round_start = on_round_start
        self._update = on_update
        self._updates_collected = on_updates_collected
        self._aggregated = on_aggregated
        self._round_end = on_round_end

    def wants_update_events(self) -> bool:
        return self._update is not None

    def wants_collected_results(self) -> bool:
        return self._updates_collected is not None

    def on_round_start(self, server, plan):
        if self._round_start is not None:
            self._round_start(server, plan)

    def on_update(self, server, plan, update):
        if self._update is not None:
            self._update(server, plan, update)

    def on_updates_collected(self, server, plan, results):
        if self._updates_collected is not None:
            self._updates_collected(server, plan, results)

    def on_aggregated(self, server, plan, aggregated):
        if self._aggregated is not None:
            self._aggregated(server, plan, aggregated)

    def on_round_end(self, server, plan, record):
        if self._round_end is not None:
            self._round_end(server, plan, record)
