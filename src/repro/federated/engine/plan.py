"""Round planning: the value objects handed to an execution backend.

The server turns each sampled round into a :class:`RoundPlan` — an immutable
description of *what* has to be computed — and hands it to an
:class:`~repro.federated.engine.backends.ExecutionBackend`, which decides
*how* (serially, on a thread pool, on worker processes).  Determinism lives
entirely in the plan: every task carries the seed of its private RNG stream,
derived from ``(run seed, round, client)`` by :mod:`repro.federated.rng`, so
the computed updates do not depend on execution order or placement.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.federated.rng import client_stream_seed


@dataclass(frozen=True)
class ClientTask:
    """One client's work item within a round.

    ``order`` is the client's position in the round's aggregation order; the
    backend returns results sorted by it so the stacked update matrix is
    identical across backends.
    """

    client_id: int
    round_idx: int
    rng_seed: int
    malicious: bool
    order: int

    def rng(self) -> np.random.Generator:
        """Fresh generator for this task's private random stream."""
        return np.random.default_rng(self.rng_seed)


@dataclass(frozen=True)
class RoundPlan:
    """Immutable description of one federated round's client work.

    ``latencies`` (aligned with ``sampled_clients``; empty means all-zero)
    are the participation model's deterministic per-(seed, round, client)
    latency draws.  Execution backends ignore them — they only order
    *aggregation* under ``aggregation_mode="buffered_async"``, where the
    server folds the first K arrivals by ``(latency, slot)`` and carries the
    rest into the next round.
    """

    round_idx: int
    sampled_clients: tuple[int, ...]
    tasks: tuple[ClientTask, ...]
    latencies: tuple[float, ...] = ()

    @property
    def benign_tasks(self) -> tuple[ClientTask, ...]:
        return tuple(t for t in self.tasks if not t.malicious)

    @property
    def malicious_tasks(self) -> tuple[ClientTask, ...]:
        return tuple(t for t in self.tasks if t.malicious)

    @property
    def compromised_sampled(self) -> list[int]:
        return [t.client_id for t in self.malicious_tasks]

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class ClientResult:
    """Outcome of executing one :class:`ClientTask`.

    ``loss`` is the final-epoch training loss for benign clients and ``None``
    for malicious ones (attacks do not report a loss).
    """

    task: ClientTask
    update: np.ndarray
    loss: float | None = None
    extras: dict = field(default_factory=dict)

    @property
    def client_id(self) -> int:
        return self.task.client_id

    @property
    def malicious(self) -> bool:
        return self.task.malicious


@dataclass
class ClientUpdate:
    """One client's contribution to a round, as the aggregation layer sees it.

    This is the unit flowing between the engine and the server's streaming
    aggregation path (:meth:`ExecutionBackend.iter_updates` yields these as
    clients finish).  ``slot`` is the client's sampled-slot index — its
    position in the round's canonical aggregation order — which is what lets
    an :class:`~repro.defenses.base.Aggregator` fold out-of-order arrivals
    deterministically.  ``num_examples`` is the size of the client's local
    training set (``0`` when unknown); ``metadata`` carries per-client extras
    for hooks and weighted/defensive aggregators.
    """

    client_id: int
    slot: int
    update: np.ndarray
    num_examples: int = 0
    loss: float | None = None
    malicious: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def weight(self) -> float:
        """Aggregation weight (the example count; ``0.0`` means unweighted)."""
        return float(self.num_examples)

    @classmethod
    def from_result(cls, result: ClientResult, num_examples: int = 0) -> "ClientUpdate":
        """Wrap an executed :class:`ClientResult` (shares the update array)."""
        return cls(
            client_id=result.client_id,
            slot=result.task.order,
            update=result.update,
            num_examples=num_examples,
            loss=result.loss,
            malicious=result.malicious,
            metadata=dict(result.extras),
        )


def build_round_plan(
    round_idx: int,
    sampled_clients: Iterable[int],
    compromised_ids: set[int] | frozenset[int],
    seed: int,
    attack_active: bool,
    latencies: Iterable[float] | None = None,
) -> RoundPlan:
    """Build the task list for one round in aggregation order."""
    sampled = tuple(int(c) for c in sampled_clients)
    lat = tuple(float(x) for x in latencies) if latencies else ()
    if lat and len(lat) != len(sampled):
        raise ValueError("latencies must align with sampled_clients")
    tasks = tuple(
        ClientTask(
            client_id=client_id,
            round_idx=round_idx,
            rng_seed=client_stream_seed(seed, round_idx, client_id),
            malicious=attack_active and client_id in compromised_ids,
            order=order,
        )
        for order, client_id in enumerate(sampled)
    )
    return RoundPlan(
        round_idx=round_idx, sampled_clients=sampled, tasks=tasks, latencies=lat
    )
