"""Cross-client batched execution: train many clients as one stacked model.

Every earlier backend parallelised *around* the math — threads, forked
processes, socket workers — while each benign client still ran its own tiny
forward/backward, dominated by many small GEMMs NumPy cannot amortise.  This
module stacks clients into a leading array dimension instead: the
:class:`BatchedClientRunner` groups a round's benign tasks by effective local
config, sorts each group by dataset size, and trains it through one
:func:`~repro.federated.client.local_train_batched` call — every layer does
one stacked kernel dispatch per step instead of ``clients`` small ones, and
clients with unequal dataset sizes still stack (the ragged step scheduler
trains whatever sub-range of the stack shares a batch shape on each step).

The headline property is **bit-identity**: per run seed, the batched path
produces the exact :class:`~repro.federated.history.TrainingHistory` bytes of
the serial backend.  That works because

* per-client parameter planes keep client weights strictly separate,
* ``np.matmul`` executes a stacked matmul as one BLAS GEMM per client slice
  with the serial shapes/strides (see :mod:`repro.nn.layers`),
* every reduction (bias gradients, loss means) reduces the same contiguous
  memory the serial reductions do, and
* each client's RNG stream is drawn from its own
  ``(seed, round, client)``-derived generator in the serial consumption
  order.

Fallbacks keep the path safe rather than clever: clients with empty data,
algorithms whose benign path is not plain ``local_train``
(``benign_batch_spec`` returns ``None``), models containing layers without a
batched counterpart (``Dropout``), and singleton groups all run through the
ordinary serial task path — which is bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np

from repro.federated.client import LocalTrainingConfig, local_train_batched
from repro.federated.engine.backends import (
    EngineContext,
    ExecutionBackend,
    run_benign_task,
    run_malicious_task,
    telemetry_span,
)
from repro.federated.engine.plan import ClientResult, ClientTask
from repro.nn.model import BatchedSequential, supports_batching
from repro.registry import BACKENDS

# Flat attribute tuple as the group key: ``dataclasses.astuple`` walks the
# dataclass recursively and is ~30x slower, which showed up in round profiles.
_CONFIG_FIELDS = tuple(f.name for f in fields(LocalTrainingConfig))


def _config_key(config: LocalTrainingConfig) -> tuple:
    return tuple(getattr(config, name) for name in _CONFIG_FIELDS)


class BatchedClientRunner:
    """Group benign tasks by effective config and train each group stacked.

    Tasks group by effective local config (all clients share one model
    factory, so architectures already match); within a group, clients are
    sorted by descending dataset size and the ragged step scheduler of
    :func:`local_train_batched` stacks whatever sub-range of them shares a
    batch shape on each step — unequal dataset sizes do not fragment the
    stack.  ``max_group`` optionally caps the stack size to bound the
    working set; stacked models are cached per group size and reused across
    rounds (their parameters are overwritten from the global vector each
    call, like any scratch model).
    """

    def __init__(self, ctx: EngineContext, max_group: int | None = None) -> None:
        if max_group is not None and max_group <= 0:
            raise ValueError("max_group must be positive")
        self.ctx = ctx
        self.max_group = max_group
        self._template = None
        self._batchable: bool | None = None
        self._stacked: dict[int, BatchedSequential] = {}
        self._scratch = None
        #: Benign tasks that took the stacked path (observable by tests).
        self.batched_task_count = 0

    # -- model management ---------------------------------------------------

    def _get_scratch(self):
        if self._scratch is None:
            self._scratch = self.ctx.model_factory()
        return self._scratch

    def _model_batchable(self) -> bool:
        if self._batchable is None:
            self._template = self.ctx.model_factory()
            self._batchable = supports_batching(self._template)
        return self._batchable

    def _stacked_model(self, clients: int) -> BatchedSequential:
        model = self._stacked.get(clients)
        if model is None:
            model = BatchedSequential.from_template(self._template, clients)
            self._stacked[clients] = model
        return model

    # -- execution ----------------------------------------------------------

    def run(
        self, tasks: tuple[ClientTask, ...], global_params: np.ndarray
    ) -> list[ClientResult]:
        """Execute the benign tasks; results come back sorted by plan order."""
        results: dict[int, ClientResult] = {}
        groups: dict[tuple, list[tuple[ClientTask, object, np.ndarray | None]]] = {}
        group_configs: dict[tuple, LocalTrainingConfig] = {}
        batchable = self._model_batchable()
        for task in tasks:
            data = self.ctx.dataset.client(task.client_id).train
            if len(data) == 0:
                # Matches serial local_train: zero update, no RNG draw.
                results[task.order] = ClientResult(
                    task=task, update=np.zeros_like(global_params), loss=0.0
                )
                continue
            spec = (
                self.ctx.algorithm.benign_batch_spec(task.client_id, self.ctx.local_config)
                if batchable
                else None
            )
            if spec is None:
                results[task.order] = run_benign_task(
                    self.ctx, task, global_params, self._get_scratch()
                )
                continue
            config, drift = spec
            key = _config_key(config)
            groups.setdefault(key, []).append((task, data, drift))
            group_configs[key] = config
        for key, members in groups.items():
            config = group_configs[key]
            # Descending size is what the ragged scheduler requires; the
            # plan-order tiebreak keeps the grouping deterministic.
            members.sort(key=lambda member: (-len(member[1]), member[0].order))
            cap = self.max_group or len(members)
            for start in range(0, len(members), cap):
                chunk = members[start : start + cap]
                if len(chunk) == 1:
                    # A stack of one has no amortisation to offer; the plain
                    # task path skips the stacking copies.
                    task = chunk[0][0]
                    results[task.order] = run_benign_task(
                        self.ctx, task, global_params, self._get_scratch()
                    )
                    continue
                self._run_group(chunk, config, global_params, results)
        return [results[order] for order in sorted(results)]

    def _run_group(
        self,
        members: list[tuple[ClientTask, object, np.ndarray | None]],
        config: LocalTrainingConfig,
        global_params: np.ndarray,
        results: dict[int, ClientResult],
    ) -> None:
        tasks = [task for task, _data, _drift in members]
        datasets = [data for _task, data, _drift in members]
        drifts = [drift for _task, _data, drift in members]
        drift_stack = None
        if drifts[0] is not None:
            drift_stack = np.stack(drifts)
        model = self._stacked_model(len(members))
        rngs = [task.rng() for task in tasks]
        with telemetry_span(
            self.ctx, "client_train",
            round=tasks[0].round_idx, clients=len(tasks), batched=True,
        ):
            updates, losses = local_train_batched(
                model, global_params, datasets, config, rngs,
                drift_corrections=drift_stack,
            )
        self.batched_task_count += len(tasks)
        for i, task in enumerate(tasks):
            # Copy the row out so a result does not pin the whole stack.
            results[task.order] = ClientResult(
                task=task, update=updates[i].copy(), loss=float(losses[i])
            )


@BACKENDS.register("batched")
class BatchedBackend(ExecutionBackend):
    """Benign clients train together as one stacked model per round group.

    ``max_group`` caps how many clients stack into one model (default:
    unlimited — one stack per work-shape group); smaller caps trade GEMM
    amortisation for working-set size.  ``iter_updates`` yields benign
    updates in canonical slot order, so streaming and sharded aggregation
    consume the batched path unchanged.
    """

    name = "batched"
    streaming_updates = True
    batched_execution = True

    def __init__(self, max_group: int | None = None) -> None:
        super().__init__()
        if max_group is not None and max_group <= 0:
            raise ValueError("max_group must be positive")
        self.max_group = max_group
        self._runner: BatchedClientRunner | None = None

    def bind(self, ctx: EngineContext) -> None:
        super().bind(ctx)
        self._runner = None

    def _get_runner(self) -> BatchedClientRunner:
        if self._runner is None:
            self._runner = BatchedClientRunner(self.ctx, max_group=self.max_group)
        return self._runner

    def _start_benign(self, tasks, global_params):
        return self._get_runner().run(tasks, global_params)

    def iter_updates(self, plan, global_params):
        # Malicious first on the driver model (stateful attacks), then the
        # stacked benign results in slot order — the whole group finishes
        # together, so slot order costs nothing and keeps streams canonical.
        ctx = self.ctx
        for task in plan.malicious_tasks:
            yield self.make_update(
                run_malicious_task(ctx, task, global_params, self._get_driver_model()),
                plan,
            )
        for result in self._get_runner().run(plan.benign_tasks, global_params):
            yield self.make_update(result, plan)
