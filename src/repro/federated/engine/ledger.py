"""Per-link, per-round communication accounting for every backend.

Production federated deployments budget against bytes on the wire, not
FLOPs; this module gives each run a :class:`CommunicationLedger` recording
how many frames and bytes every link moved in every round, split into
protocol overhead (frame header + JSON envelope) versus vector payload, per
*channel*:

``model``
    The logical client↔server model traffic every backend implies —
    parameters down to each sampled client at round start, one update back
    per client — accounted analytically through
    :func:`~repro.federated.engine.distributed.protocol.message_size` by
    the :class:`LedgerHook`.  Uniform across serial, thread, process,
    batched and distributed backends: the *logical* federation traffic of a
    round does not depend on how the clients happen to execute, so ledgers
    are comparable across backends.

``wire``
    The frames a distributed coordinator actually exchanged with its worker
    processes (CONFIGURE/ROUND/TASK down, HELLO/CONFIGURED/UPDATE up),
    metered at the coordinator's sockets.  Setup traffic outside any round
    (HELLO, CONFIGURE, SHUTDOWN) is recorded at ``round_idx = -1``.

The ledger is plain counters — no vectors are copied to account for them —
and serialises losslessly into ``ExperimentResult.to_dict()`` (the
``ledger`` key of ``repro run --out`` JSON; ``repro ledger`` renders the
summary table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.federated.engine.distributed.protocol import message_size
from repro.federated.engine.hooks import RoundHook
from repro.federated.engine.plan import ClientUpdate, RoundPlan

#: Round index of traffic outside any round (worker setup/teardown frames).
SETUP_ROUND = -1


@dataclass
class _LinkCounters:
    """Mutable frame/byte counters of one (round, channel, link, direction)."""

    frames: int = 0
    header_bytes: int = 0
    payload_bytes: int = 0


@dataclass
class CommunicationLedger:
    """Frame/byte counters keyed by round, channel, link and direction.

    ``link`` identifies the peer (``client:<id>`` on the model channel,
    ``worker:<pid>`` on the wire channel); ``direction`` is ``"down"``
    (server/coordinator → peer) or ``"up"``.  ``dtypes`` records the wire
    dtype each channel's vectors were accounted at.
    """

    _entries: dict = field(default_factory=dict)
    dtypes: dict = field(default_factory=dict)

    def record(
        self,
        *,
        round_idx: int,
        channel: str,
        link: str,
        direction: str,
        frames: int = 1,
        header_bytes: int = 0,
        payload_bytes: int = 0,
        dtype: str | None = None,
    ) -> None:
        """Add one observation; counters aggregate per key."""
        if direction not in ("down", "up"):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        key = (int(round_idx), str(channel), str(link), direction)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _LinkCounters()
        entry.frames += int(frames)
        entry.header_bytes += int(header_bytes)
        entry.payload_bytes += int(payload_bytes)
        if dtype is not None:
            self.dtypes[str(channel)] = dtype

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def channels(self) -> list[str]:
        return sorted({key[1] for key in self._entries})

    def rounds(self) -> list[int]:
        return sorted({key[0] for key in self._entries})

    def totals(self) -> dict:
        """Run-wide counters: frames, header/payload split, total bytes."""
        frames = header = payload = 0
        for entry in self._entries.values():
            frames += entry.frames
            header += entry.header_bytes
            payload += entry.payload_bytes
        return {
            "frames": frames,
            "header_bytes": header,
            "payload_bytes": payload,
            "bytes": header + payload,
        }

    def round_rows(self) -> list[dict]:
        """One summary row per (round, channel, direction), link-aggregated.

        The shape ``repro ledger`` renders: per-link detail stays in
        :meth:`to_dict` for tooling, the table shows the round trajectory.
        """
        grouped: dict[tuple, list] = {}
        for (round_idx, channel, link, direction), entry in self._entries.items():
            grouped.setdefault((round_idx, channel, direction), []).append((link, entry))
        rows = []
        for (round_idx, channel, direction) in sorted(grouped):
            links = grouped[(round_idx, channel, direction)]
            rows.append(
                {
                    "round": round_idx,
                    "channel": channel,
                    "direction": direction,
                    "links": len({link for link, _entry in links}),
                    "frames": sum(entry.frames for _link, entry in links),
                    "header_bytes": sum(entry.header_bytes for _link, entry in links),
                    "payload_bytes": sum(entry.payload_bytes for _link, entry in links),
                }
            )
        return rows

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible form: per-link entries plus derived totals."""
        entries = [
            {
                "round": round_idx,
                "channel": channel,
                "link": link,
                "direction": direction,
                "frames": entry.frames,
                "header_bytes": entry.header_bytes,
                "payload_bytes": entry.payload_bytes,
            }
            for (round_idx, channel, link, direction), entry in sorted(
                self._entries.items()
            )
        ]
        return {"dtypes": dict(self.dtypes), "entries": entries, "totals": self.totals()}

    @classmethod
    def from_dict(cls, data: dict) -> "CommunicationLedger":
        """Rebuild from :meth:`to_dict` output (``totals`` are re-derived)."""
        ledger = cls()
        ledger.dtypes = dict(data.get("dtypes", {}))
        for entry in data.get("entries", []):
            ledger.record(
                round_idx=entry["round"],
                channel=entry["channel"],
                link=entry["link"],
                direction=entry["direction"],
                frames=entry.get("frames", 0),
                header_bytes=entry.get("header_bytes", 0),
                payload_bytes=entry.get("payload_bytes", 0),
            )
        return ledger


class LedgerHook(RoundHook):
    """Account the logical client↔server model traffic of every round.

    Backend-independent by construction: the hook sizes the frames the
    distributed protocol *would* use for each logical transfer — the
    parameter broadcast to every sampled client at round start, one update
    frame back per client — so a serial run and a distributed run of the
    same scenario report the same model-channel ledger.  ``wire_dtype``
    follows the backend's configured encoding when it has one, so an fp32
    distributed run's halved model traffic is visible in the ledger.
    """

    def __init__(self, ledger: CommunicationLedger, wire_dtype: str = "float64"):
        self.ledger = ledger
        self.wire_dtype = wire_dtype

    def on_round_start(self, server, plan: RoundPlan) -> None:
        dim = int(server.global_params.shape[0])
        header, payload = message_size(
            {"round": plan.round_idx}, {"params": dim}, dtype=self.wire_dtype
        )
        for client_id in plan.sampled_clients:
            self.ledger.record(
                round_idx=plan.round_idx,
                channel="model",
                link=f"client:{client_id}",
                direction="down",
                header_bytes=header,
                payload_bytes=payload,
                dtype=self.wire_dtype,
            )

    def on_update(self, server, plan: RoundPlan, update: ClientUpdate) -> None:
        fields = {"order": update.slot, "client": update.client_id, "loss": update.loss}
        if update.metadata.get("secagg_masked"):
            fields["masked"] = True
        # Buffered-async carried updates fire on_update in the round they
        # *arrive* (plan.round_idx), not the round that computed them — a
        # straggler's bytes reach the server late, and the ledger attributes
        # them to the arrival round exactly once.  The frame carries the
        # origin round so tooling can see the staleness on the wire.
        origin = update.metadata.get("origin_round")
        if origin is not None and origin != plan.round_idx:
            fields["origin_round"] = origin
        header, payload = message_size(
            fields, {"update": int(update.update.shape[0])}, dtype=self.wire_dtype
        )
        self.ledger.record(
            round_idx=plan.round_idx,
            channel="model",
            link=f"client:{update.client_id}",
            direction="up",
            header_bytes=header,
            payload_bytes=payload,
            dtype=self.wire_dtype,
        )
