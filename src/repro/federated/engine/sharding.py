"""Sharded streaming aggregation: fan the hot fold loop out over workers.

PR 3 made aggregation O(param_dim) streaming state; this module splits that
state across *shards* — contiguous slices of the flat parameter vector —
so the per-update fold scales with workers instead of running on one core.

:func:`plan_shards` is the shard planner: it cuts ``param_dim`` into at
most ``num_shards`` contiguous, nearly-equal slices.  :class:`
ShardedAggregator` wraps any *shardable* defense (``mean``,
``weighted_mean``, ``norm_bound``, ``dp``, ``signsgd`` — see
:class:`~repro.defenses.base.Aggregator.shardable`) and runs one worker
thread per shard: the coordinator performs the whole-vector per-update
precompute (:meth:`~repro.defenses.base.Aggregator.prepare_update`, e.g.
the clipping norm) and the slot-order bookkeeping, then hands ``(vector,
aux)`` to every shard's queue; each worker folds its own slice in the same
slot order.  NumPy releases the GIL inside its ufunc inner loops, so the
per-shard elementwise folds genuinely overlap on multi-core machines.

Determinism: a shardable fold is elementwise in the update given its
precomputed aux, so folding ``update[shard]`` per shard in slot order
produces, element for element, the exact floating-point operation sequence
of the single fold — ``shards=N`` is bit-identical to ``shards=1`` on every
backend and under any completion order.  At finalize the shard accumulators
are concatenated back into one vector and handed to the defense's
:meth:`~repro.defenses.base.Aggregator.finalize_vector`, so noise draws and
normalisation also match the unsharded path exactly.

Non-shardable defenses (krum, median, …) are simply not wrapped
(:func:`maybe_shard` returns them unchanged) and keep their existing
single-fold or buffering path.  The sharded fold is also the stated
prerequisite for the multi-host backend: the coordinator/worker split here
is the same protocol a distributed parameter-shard server would speak.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.defenses.base import AggregationContext, AggregationState, Aggregator

#: Sentinel closing a shard worker's queue for the round.
_DONE = object()

#: Per-shard bound on updates in flight.  Folds are far faster than client
#: training, but a burst of completions (many thread-backend workers
#: finishing at once) must not re-materialise the whole round in the shard
#: queues — that would restore the O(clients × param_dim) peak memory the
#: streaming path exists to avoid.  A blocking put on a bounded queue gives
#: the coordinator natural backpressure at a few updates in flight.
_QUEUE_DEPTH = 4


def plan_shards(param_dim: int, num_shards: int) -> tuple[slice, ...]:
    """Split a flat parameter vector into contiguous, nearly-equal slices.

    Returns at most ``num_shards`` slices (never more than ``param_dim`` —
    empty shards are pointless), covering ``0..param_dim`` exactly, with
    sizes differing by at most one and larger shards first.
    """
    if param_dim <= 0:
        raise ValueError("param_dim must be positive")
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    count = min(num_shards, param_dim)
    base, extra = divmod(param_dim, count)
    slices = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return tuple(slices)


@dataclass
class _ShardRound:
    """Live worker state of one sharded round.

    Owned by the :class:`~repro.defenses.base.AggregationState` it belongs
    to (``state.data``), not by the aggregator, so concurrent in-flight
    rounds never interfere.  ``results``/``errors`` are written by each
    worker exactly once, at its sentinel, before the coordinator joins it.
    """

    slices: tuple[slice, ...]
    queues: list[queue.Queue]
    threads: list[threading.Thread]
    results: list
    errors: list
    #: The run's RunTelemetry (or None): workers report fold busy-time to
    #: its ``shard.fold_busy_s`` histogram at their sentinel.
    telemetry: object | None = None


class ShardedAggregator(Aggregator):
    """Wrap a shardable defense so its streaming fold runs on shard workers.

    Implements the streaming protocol by delegating the defense math to the
    wrapped aggregator's slice-fold extension points: the inherited
    slot-order machinery still runs in the coordinator (so out-of-order
    arrivals are handled exactly as before), while the elementwise slice
    folds execute concurrently, one worker thread per shard per round.
    Spawning the handful of threads per round costs microseconds — noise
    next to a federated round — and keeps every round's worker state on its
    own :class:`~repro.defenses.base.AggregationState`, so concurrent
    in-flight rounds on one aggregator behave exactly like any other
    aggregator's concurrent states.  :meth:`close` (the server calls it via
    ``FederatedServer.close``) releases the workers of any round that was
    abandoned mid-flight instead of finalized.

    The matrix protocol simply delegates to the wrapped defense — sharding
    only concerns the streaming fold, so ``streaming="off"`` behaves as if
    the wrapper were absent.
    """

    streaming = True
    shardable = False  # a wrapper is not itself wrappable

    def __init__(self, inner: Aggregator, num_shards: int) -> None:
        if isinstance(inner, ShardedAggregator):
            raise ValueError("cannot shard an already-sharded aggregator")
        if not (getattr(inner, "streaming", False) and getattr(inner, "shardable", False)):
            raise ValueError(
                f"defense {getattr(inner, 'name', type(inner).__name__)!r} is "
                "not shardable; it keeps the single-fold path"
            )
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.inner = inner
        self.num_shards = num_shards
        self.name = f"sharded[{inner.name}x{num_shards}]"
        self.streaming_only = getattr(inner, "streaming_only", False)
        self._live_rounds: list[_ShardRound] = []

    # -- matrix protocol: sharding does not apply ---------------------------

    def aggregate(self, updates, global_params, ctx):
        return self.inner.aggregate(updates, global_params, ctx)

    # -- streaming protocol -------------------------------------------------

    def _begin(self, ctx: AggregationContext):
        # The shard plan needs param_dim, which only the first update
        # reveals; the worker round is opened lazily in _fold.
        return None

    def _fold(self, state: AggregationState, update) -> None:
        aux = self.inner.prepare_update(update)
        state.aux = self.inner.fold_aux(state.aux, aux)
        if state.data is None:
            state.data = self._open_round(
                update.update.shape[0], state.ctx.telemetry
            )
        vector = update.update
        for shard_queue in state.data.queues:
            shard_queue.put((vector, aux))

    def _finalize(self, state: AggregationState, global_params, ctx):
        tel = ctx.telemetry
        span = (
            tel.tracer.span(
                "shard_fold", round=ctx.round_idx, shards=len(state.data.slices)
            )
            if tel is not None
            else nullcontext()
        )
        with span:
            folded = self._drain(state.data)
        return self.inner.finalize_vector(folded, state, global_params, ctx)

    def abort(self, state: AggregationState) -> None:
        """Release the round's shard workers without finalizing the fold."""
        if state.data is not None:
            self._stop_round(state.data)

    # -- worker management --------------------------------------------------

    def _open_round(
        self, param_dim: int, telemetry: object | None = None
    ) -> _ShardRound:
        slices = plan_shards(param_dim, self.num_shards)
        count = len(slices)
        round_ = _ShardRound(
            slices=slices,
            queues=[queue.Queue(maxsize=_QUEUE_DEPTH) for _ in range(count)],
            threads=[],
            results=[None] * count,
            errors=[None] * count,
            telemetry=telemetry,
        )
        for index in range(count):
            # Daemon so a round no one finalizes or closes (a crashed
            # caller) cannot block interpreter exit.
            thread = threading.Thread(
                target=self._shard_worker,
                args=(round_, index),
                name=f"agg-shard-{index}",
                daemon=True,
            )
            round_.threads.append(thread)
            thread.start()
        self._live_rounds.append(round_)
        return round_

    def _shard_worker(self, round_: _ShardRound, index: int) -> None:
        """Fold this shard's slice of every update, in arrival (= slot) order.

        The loop always drains to its sentinel, even after a fold raised:
        the queues are bounded, so a worker that stopped consuming would
        leave the coordinator blocked forever in a backpressure ``put``.
        The first fold error is recorded and re-raised at finalize.
        """
        fold_slice = self.inner.fold_slice
        shard_queue = round_.queues[index]
        shard_slice = round_.slices[index]
        telemetry = round_.telemetry
        acc = None
        busy = 0.0
        while True:
            item = shard_queue.get()
            if item is _DONE:
                round_.results[index] = acc
                if telemetry is not None:
                    telemetry.metrics.histogram("shard.fold_busy_s").observe(busy)
                return
            if round_.errors[index] is None:
                vector, aux = item
                try:
                    if telemetry is not None:
                        fold_start = time.monotonic()
                        acc = fold_slice(acc, vector[shard_slice], aux)
                        busy += time.monotonic() - fold_start
                    else:
                        acc = fold_slice(acc, vector[shard_slice], aux)
                except BaseException as exc:  # noqa: BLE001 - rethrown at drain
                    round_.errors[index] = exc

    def _stop_round(self, round_: _ShardRound) -> None:
        """Send sentinels and wait for the round's workers to exit."""
        self._live_rounds = [r for r in self._live_rounds if r is not round_]
        for shard_queue in round_.queues:
            shard_queue.put(_DONE)
        for thread in round_.threads:
            thread.join()

    def _drain(self, round_: _ShardRound) -> np.ndarray:
        """Stop the round's workers and concatenate their shard folds."""
        self._stop_round(round_)
        for error in round_.errors:
            if error is not None:
                raise error
        return np.concatenate(round_.results)

    def close(self) -> None:
        """Release the workers of any still-open rounds (idempotent)."""
        for round_ in list(self._live_rounds):
            self._stop_round(round_)


def maybe_shard(aggregator: Aggregator, num_shards: int) -> Aggregator:
    """Wrap ``aggregator`` for sharded folding when it supports it.

    ``num_shards <= 1`` or a non-shardable defense returns the aggregator
    unchanged — the documented fallback to the single-fold (or buffering)
    path, bit-identical to the sharded one.
    """
    if num_shards <= 1 or isinstance(aggregator, ShardedAggregator):
        return aggregator
    if not (getattr(aggregator, "streaming", False) and getattr(aggregator, "shardable", False)):
        return aggregator
    return ShardedAggregator(aggregator, num_shards)
