"""Per-round training history used by the longevity/stability analyses."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.registry import reject_unknown_keys


@dataclass
class RoundRecord:
    """Everything recorded about a single federated round."""

    round_idx: int
    sampled_clients: list[int]
    compromised_sampled: list[int]
    mean_benign_loss: float
    update_norm: float
    benign_accuracy: float | None = None
    attack_success_rate: float | None = None
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible plain-data form (floats kept at full precision)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        reject_unknown_keys(data, {f.name for f in fields(cls)}, "round-record")
        return cls(**data)


@dataclass
class TrainingHistory:
    """Ordered collection of round records plus convenience accessors."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def series(self, attribute: str) -> list:
        """Extract a per-round series of one attribute (e.g. ``"benign_accuracy"``)."""
        return [getattr(record, attribute) for record in self.records]

    def last(self) -> RoundRecord:
        if not self.records:
            raise IndexError("history is empty")
        return self.records[-1]

    def to_dict(self) -> dict:
        """JSON-compatible plain-data form; round-trips bit-identically."""
        return {"records": [record.to_dict() for record in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        return cls(records=[RoundRecord.from_dict(r) for r in data.get("records", [])])
