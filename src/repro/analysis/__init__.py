"""Statistical analysis used for the defense-bypass evaluation."""

from repro.analysis.statistics import (
    gradient_indistinguishability,
    ks_test,
    levene_test,
    three_sigma_outliers,
    two_sample_t_test,
)

__all__ = [
    "two_sample_t_test",
    "levene_test",
    "ks_test",
    "three_sigma_outliers",
    "gradient_indistinguishability",
]
