"""Statistical tests used to probe whether malicious updates are detectable.

The paper reports (Section V, "Bypassing Defenses") that CollaPois's malicious
gradients are statistically indistinguishable from benign ones under a t-test
on angles/means, Levene's test on variances, a Kolmogorov–Smirnov test on the
gradient distributions, and the 3σ outlier rule.  This module wraps those four
tests around scipy and exposes a single summary helper used by both the
stealth diagnostics and the MESAS-style detector defense.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def two_sample_t_test(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Welch two-sample t-test; returns ``(statistic, p_value)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        return 0.0, 1.0
    result = stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def levene_test(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Levene's test for equality of variances; returns ``(statistic, p_value)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        return 0.0, 1.0
    result = stats.levene(a, b)
    return float(result.statistic), float(result.pvalue)


def ks_test(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test; returns ``(statistic, p_value)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 1 or b.size < 1:
        return 0.0, 1.0
    result = stats.ks_2samp(a, b)
    return float(result.statistic), float(result.pvalue)


def three_sigma_outliers(values: np.ndarray, reference: np.ndarray | None = None) -> np.ndarray:
    """Boolean mask of values outside the 3σ band of the reference population."""
    values = np.asarray(values, dtype=np.float64)
    reference = values if reference is None else np.asarray(reference, dtype=np.float64)
    if reference.size == 0:
        return np.zeros(values.shape, dtype=bool)
    mean = reference.mean()
    std = reference.std()
    if std == 0.0:
        return np.abs(values - mean) > 0.0
    return np.abs(values - mean) > 3.0 * std


def gradient_indistinguishability(
    malicious_stats: np.ndarray,
    benign_stats: np.ndarray,
    significance: float = 0.05,
) -> dict[str, float | bool]:
    """Run the paper's full test battery on scalar per-update statistics.

    ``malicious_stats`` / ``benign_stats`` are 1-D arrays of a per-update
    scalar (an angle or a norm).  Returns each test's p-value, whether the
    malicious group is distinguishable at the given significance level, and
    the fraction of malicious updates flagged by the 3σ rule.
    """
    _, t_p = two_sample_t_test(malicious_stats, benign_stats)
    _, levene_p = levene_test(malicious_stats, benign_stats)
    _, ks_p = ks_test(malicious_stats, benign_stats)
    outlier_fraction = float(
        np.mean(three_sigma_outliers(malicious_stats, reference=benign_stats))
    ) if np.asarray(malicious_stats).size else 0.0
    distinguishable = bool(
        (t_p < significance) or (levene_p < significance) or (ks_p < significance)
    )
    return {
        "t_test_p": t_p,
        "levene_p": levene_p,
        "ks_p": ks_p,
        "three_sigma_outlier_fraction": outlier_fraction,
        "distinguishable": distinguishable,
    }
