"""repro — reproduction of the CollaPois collaborative backdoor poisoning study.

This library re-implements, end to end and without external ML frameworks,
the system evaluated in "A Client-level Assessment of Collaborative Backdoor
Poisoning in Non-IID Federated Learning" (ICDCS 2025):

* a federated-learning simulator with FedAvg / FedDC / MetaFed training,
* Dirichlet-skewed synthetic FEMNIST-like and Sentiment-like federations,
* the CollaPois attack and the DPois / MRepl / DBA baselines,
* the Table-I catalogue of robust-aggregation defenses,
* client-level evaluation metrics and the paper's theoretical bounds,
* an experiment harness regenerating every figure of the evaluation.

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, run_experiment
>>> config = ExperimentConfig(dataset="femnist", num_clients=20, rounds=5,
...                           attack="collapois", alpha=0.1)
>>> result = run_experiment(config)
>>> round(result.evaluation.mean_attack_success_rate, 2)  # doctest: +SKIP
0.93
"""

from repro import analysis, attacks, core, data, defenses, federated, metrics, nn, registry

__version__ = "1.1.0"

__all__ = [
    "nn",
    "data",
    "federated",
    "attacks",
    "core",
    "defenses",
    "metrics",
    "analysis",
    "registry",
    "__version__",
]
