"""Attack interface shared by CollaPois and the baseline attacks.

An attack is configured once (``setup``) with everything the threat model
grants the attacker — the compromised clients' local data, the model
architecture (learned through the compromised clients), the trigger, and the
target class — and is then queried each round for the malicious update a
sampled compromised client submits to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.triggers import Trigger
from repro.data.federated_data import FederatedDataset
from repro.federated.client import LocalTrainingConfig


@dataclass
class AttackContext:
    """Static attacker knowledge assembled by :meth:`BackdoorAttack.setup`."""

    dataset: FederatedDataset
    compromised_ids: list[int]
    trigger: Trigger
    target_class: int
    local_config: LocalTrainingConfig
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.compromised_ids:
            raise ValueError("an attack needs at least one compromised client")
        if not 0 <= self.target_class < self.dataset.num_classes:
            raise ValueError("target_class out of range")


class BackdoorAttack:
    """Base class for all backdoor attacks."""

    name = "attack"

    def __init__(self) -> None:
        self.context: AttackContext | None = None
        self.model_factory = None

    def setup(
        self,
        dataset: FederatedDataset,
        compromised_ids: list[int],
        model_factory,
        trigger: Trigger,
        target_class: int,
        local_config: LocalTrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        """Configure the attack; subclasses extend this with their own prep."""
        self.context = AttackContext(
            dataset=dataset,
            compromised_ids=list(compromised_ids),
            trigger=trigger,
            target_class=target_class,
            local_config=local_config or LocalTrainingConfig(),
            seed=seed,
        )
        self.model_factory = model_factory

    def _require_context(self) -> AttackContext:
        if self.context is None or self.model_factory is None:
            raise RuntimeError(f"{self.name}: setup() must be called before use")
        return self.context

    def compute_update(
        self,
        client_id: int,
        global_params: np.ndarray,
        round_idx: int,
        model,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Malicious update Δθ submitted by compromised client ``client_id``."""
        raise NotImplementedError
