"""DBA: distributed backdoor attack.

DBA (Xie et al., ICLR 2020) decomposes a global trigger pattern into several
local sub-patterns, assigning one to each compromised client; every
compromised client data-poisons its local training set with only its own
sub-pattern.  At inference time the *full* trigger activates the backdoor.
Like DPois, the malicious gradients are trained on the clients' own diverse
data, so they scatter and DBA inherits the same non-IID weakness.

For feature-space triggers (text), splitting a patch is not meaningful, so
each compromised client applies the full trigger scaled down by the number of
parts — preserving the "each client contributes a fraction of the trigger"
structure.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.dpois import DPoisAttack
from repro.attacks.triggers import PixelPatchTrigger, TokenTrigger, Trigger, poison_dataset
from repro.data.dataset import Dataset
from repro.federated.client import local_train
from repro.registry import ATTACKS


@ATTACKS.register("dba")
class DBAAttack(BackdoorAttack):
    """Distributed backdoor attack with per-client trigger decomposition."""

    name = "dba"

    def __init__(self, poison_fraction: float = 0.5, num_parts: int | None = None) -> None:
        super().__init__()
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError("poison_fraction must be in (0, 1]")
        self.poison_fraction = poison_fraction
        self.num_parts = num_parts
        self._poisoned_data: dict[int, Dataset] = {}
        self._sub_triggers: dict[int, Trigger] = {}

    def _decompose_trigger(self, trigger: Trigger, compromised_ids: list[int]) -> dict[int, Trigger]:
        parts = self.num_parts or min(4, len(compromised_ids))
        parts = max(1, parts)
        if isinstance(trigger, PixelPatchTrigger):
            sub_triggers = trigger.split(parts)
        elif isinstance(trigger, TokenTrigger):
            sub_triggers = [
                TokenTrigger(trigger.trigger_embedding, scale=trigger.scale / parts)
                for _ in range(parts)
            ]
        else:
            # Triggers without a natural decomposition (e.g. warping) are used
            # whole by every client; DBA then degenerates to DPois, which is
            # the fair fallback used in prior reproductions.
            sub_triggers = [trigger] * parts
        return {
            client_id: sub_triggers[i % parts]
            for i, client_id in enumerate(compromised_ids)
        }

    def setup(self, dataset, compromised_ids, model_factory, trigger, target_class,
              local_config=None, seed=0) -> None:
        super().setup(dataset, compromised_ids, model_factory, trigger, target_class,
                      local_config, seed)
        rng = np.random.default_rng(seed)
        self._sub_triggers = self._decompose_trigger(trigger, list(compromised_ids))
        self._poisoned_data = {}
        for client_id in compromised_ids:
            clean = dataset.client(client_id).train
            self._poisoned_data[client_id] = poison_dataset(
                clean, self._sub_triggers[client_id], target_class,
                poison_fraction=self.poison_fraction, rng=rng, keep_clean=True,
            )

    def compute_update(self, client_id, global_params, round_idx, model, rng) -> np.ndarray:
        context = self._require_context()
        data = self._poisoned_data.get(client_id)
        if data is None:
            raise KeyError(f"client {client_id} is not a compromised client of this attack")
        update, _ = local_train(model, global_params, data, context.local_config, rng)
        return update


__all__ = ["DBAAttack", "DPoisAttack"]
