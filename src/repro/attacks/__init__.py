"""Backdoor attack implementations.

This package contains the trigger library and the three baseline attacks the
paper compares against:

* **DPois** — classical data poisoning: compromised clients train on Trojaned
  local datasets and submit the resulting gradients.
* **MRepl** — model replacement: compromised clients scale their malicious
  update so a single round (approximately) replaces the aggregated model with
  the Trojaned model.
* **DBA** — distributed backdoor attack: the global trigger is split into
  sub-patterns, one per compromised client.

The paper's own contribution, **CollaPois**, lives in :mod:`repro.core`.
"""

from repro.attacks.base import AttackContext, BackdoorAttack
from repro.attacks.dba import DBAAttack
from repro.attacks.dpois import DPoisAttack
from repro.attacks.mrepl import MReplAttack
from repro.attacks.triggers import (
    PixelPatchTrigger,
    TokenTrigger,
    Trigger,
    WarpingTrigger,
    poison_dataset,
)

__all__ = [
    "AttackContext",
    "BackdoorAttack",
    "DPoisAttack",
    "MReplAttack",
    "DBAAttack",
    "Trigger",
    "WarpingTrigger",
    "PixelPatchTrigger",
    "TokenTrigger",
    "poison_dataset",
]
