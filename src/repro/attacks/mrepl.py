"""MRepl: model-replacement backdoor attack.

The attacker first trains a Trojaned model on the compromised clients'
poisoned auxiliary data, then each compromised client submits a *scaled*
update ``γ (X − θ_t)`` with a boost factor approximating ``|S_t|`` so that a
single aggregation step (approximately) replaces the global model with the
Trojaned one (Bagdasaryan et al., 2020).  The scaling causes the abrupt
performance shift the paper highlights as MRepl's weakness (Fig. 13) and its
large-magnitude updates are what norm-based defenses catch.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.triggers import poison_dataset
from repro.core.trojan import train_trojan_model
from repro.registry import ATTACKS


@ATTACKS.register("mrepl")
class MReplAttack(BackdoorAttack):
    """Model replacement with an explicit boost factor."""

    name = "mrepl"

    def __init__(
        self,
        boost_factor: float | None = None,
        poison_fraction: float = 0.5,
        trojan_epochs: int = 5,
        attack_round: int = 0,
        num_shots: int | None = 1,
    ) -> None:
        super().__init__()
        if boost_factor is not None and boost_factor <= 0:
            raise ValueError("boost_factor must be positive")
        if attack_round < 0:
            raise ValueError("attack_round must be non-negative")
        if num_shots is not None and num_shots <= 0:
            raise ValueError("num_shots must be positive or None")
        self.boost_factor = boost_factor
        self.poison_fraction = poison_fraction
        self.trojan_epochs = trojan_epochs
        self.attack_round = attack_round
        # MRepl is characteristically a one-shot (or few-shot) replacement;
        # ``num_shots=None`` re-attacks every round instead.
        self.num_shots = num_shots
        self.attacked_rounds: set[int] = set()
        self.trojan_params: np.ndarray | None = None

    def setup(self, dataset, compromised_ids, model_factory, trigger, target_class,
              local_config=None, seed=0) -> None:
        super().setup(dataset, compromised_ids, model_factory, trigger, target_class,
                      local_config, seed)
        context = self._require_context()
        aux = dataset.auxiliary_dataset(compromised_ids, source="all")
        poisoned = poison_dataset(
            aux, trigger, target_class,
            poison_fraction=self.poison_fraction,
            rng=np.random.default_rng(seed), keep_clean=True,
        )
        self.trojan_params = train_trojan_model(
            model_factory, poisoned,
            epochs=self.trojan_epochs,
            lr=context.local_config.lr,
            batch_size=context.local_config.batch_size,
            seed=seed,
        )

    def _effective_boost(self) -> float:
        context = self._require_context()
        if self.boost_factor is not None:
            return self.boost_factor
        # Default: assume the attacker knows (or estimates) the expected
        # number of sampled clients and boosts by it, the classic MRepl rule.
        expected_sampled = max(2.0, 0.2 * context.dataset.num_clients)
        return expected_sampled / max(1, len(context.compromised_ids))

    def compute_update(self, client_id, global_params, round_idx, model, rng) -> np.ndarray:
        self._require_context()
        if self.trojan_params is None:
            raise RuntimeError("setup() did not train the Trojaned model")
        if round_idx < self.attack_round:
            return np.zeros_like(global_params)
        if self.num_shots is not None and round_idx not in self.attacked_rounds:
            if len(self.attacked_rounds) >= self.num_shots:
                # The replacement budget is spent; behave innocuously.
                return np.zeros_like(global_params)
        self.attacked_rounds.add(round_idx)
        return self._effective_boost() * (self.trojan_params - global_params)
