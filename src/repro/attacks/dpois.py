"""DPois: classical data-poisoning backdoor attack.

Each compromised client trains its local model on a Trojaned version of its
own dataset (clean samples plus triggered samples relabelled to the target
class) and submits the resulting gradient — the approach of the classical
poisoning literature the paper uses as its first baseline.  Because the local
Trojaned models depend on each client's *own* (diverse) data, the malicious
gradients scatter just like benign ones (Fig. 3b), which is exactly the
weakness CollaPois removes.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.triggers import poison_dataset
from repro.data.dataset import Dataset
from repro.federated.client import local_train
from repro.registry import ATTACKS


@ATTACKS.register("dpois")
class DPoisAttack(BackdoorAttack):
    """Data poisoning: train locally on clean ∪ Trojaned data."""

    name = "dpois"

    def __init__(self, poison_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError("poison_fraction must be in (0, 1]")
        self.poison_fraction = poison_fraction
        self._poisoned_data: dict[int, Dataset] = {}

    def setup(self, dataset, compromised_ids, model_factory, trigger, target_class,
              local_config=None, seed=0) -> None:
        super().setup(dataset, compromised_ids, model_factory, trigger, target_class,
                      local_config, seed)
        rng = np.random.default_rng(seed)
        self._poisoned_data = {}
        for client_id in compromised_ids:
            clean = dataset.client(client_id).train
            self._poisoned_data[client_id] = poison_dataset(
                clean, trigger, target_class,
                poison_fraction=self.poison_fraction, rng=rng, keep_clean=True,
            )

    def compute_update(self, client_id, global_params, round_idx, model, rng) -> np.ndarray:
        context = self._require_context()
        data = self._poisoned_data.get(client_id)
        if data is None:
            raise KeyError(f"client {client_id} is not a compromised client of this attack")
        update, _ = local_train(model, global_params, data, context.local_config, rng)
        return update
