"""Backdoor trigger library.

The paper uses the WaNet warping-based Trojan for image data (an imperceptible
smooth geometric distortion) and a fixed trigger term for text data.  Both are
reproduced here, plus the classic pixel-patch trigger used by DBA-style
attacks and the trigger ablation benchmark.

A trigger is a deterministic input transformation ``apply(x) -> x'``; poisoned
training data is built by applying the trigger and rewriting the labels to the
attacker's target class (:func:`poison_dataset`).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.registry import TRIGGERS


class Trigger:
    """Base class: a deterministic transformation of a batch of inputs."""

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Return a triggered copy of ``x`` (the input is never modified)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x)


@TRIGGERS.register("warping")
class WarpingTrigger(Trigger):
    """WaNet-style smooth elastic warping of images.

    A small, smooth displacement field is generated once (deterministically
    from ``seed``) and applied to every image via bilinear interpolation.
    The distortion is imperceptible at small ``strength`` but consistent, so a
    model can learn to associate it with the target label — the same mechanism
    as WaNet [25].
    """

    def __init__(
        self,
        image_size: int,
        strength: float = 0.75,
        grid_size: int = 4,
        seed: int = 7,
    ) -> None:
        if image_size < 4:
            raise ValueError("image_size must be at least 4")
        if strength < 0:
            raise ValueError("strength must be non-negative")
        self.image_size = image_size
        self.strength = strength
        rng = np.random.default_rng(seed)
        # Coarse random field upsampled to image resolution, then normalised.
        coarse = rng.uniform(-1.0, 1.0, size=(2, grid_size, grid_size))
        zoom = image_size / grid_size
        field = np.stack(
            [ndimage.zoom(coarse[i], zoom, order=3, mode="nearest") for i in range(2)]
        )
        field = field / (np.abs(field).max() + 1e-12)
        self.displacement = field * strength

    def apply(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("WarpingTrigger expects NCHW images")
        if x.shape[-1] != self.image_size or x.shape[-2] != self.image_size:
            raise ValueError("image size mismatch with the trigger's warping field")
        grid = np.meshgrid(
            np.arange(self.image_size), np.arange(self.image_size), indexing="ij"
        )
        coords = [grid[0] + self.displacement[0], grid[1] + self.displacement[1]]
        out = np.empty_like(x)
        for n in range(x.shape[0]):
            for c in range(x.shape[1]):
                out[n, c] = ndimage.map_coordinates(
                    x[n, c], coords, order=1, mode="reflect"
                )
        return out


@TRIGGERS.register("patch")
class PixelPatchTrigger(Trigger):
    """Classic bright patch in a corner of the image.

    ``mask`` (optional) restricts the patch to a subset of its pixels — DBA
    uses this to hand each compromised client a different sub-pattern of the
    global trigger.
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int = 3,
        value: float = 1.0,
        corner: str = "top-left",
        mask: np.ndarray | None = None,
    ) -> None:
        if patch_size <= 0 or patch_size > image_size:
            raise ValueError("invalid patch_size")
        if corner not in {"top-left", "top-right", "bottom-left", "bottom-right"}:
            raise ValueError("invalid corner")
        self.image_size = image_size
        self.patch_size = patch_size
        self.value = value
        self.corner = corner
        if mask is None:
            mask = np.ones((patch_size, patch_size), dtype=bool)
        if mask.shape != (patch_size, patch_size):
            raise ValueError("mask shape must match patch_size")
        self.mask = mask.astype(bool)

    def _slices(self) -> tuple[slice, slice]:
        p = self.patch_size
        if self.corner == "top-left":
            return slice(0, p), slice(0, p)
        if self.corner == "top-right":
            return slice(0, p), slice(self.image_size - p, self.image_size)
        if self.corner == "bottom-left":
            return slice(self.image_size - p, self.image_size), slice(0, p)
        return (
            slice(self.image_size - p, self.image_size),
            slice(self.image_size - p, self.image_size),
        )

    def apply(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("PixelPatchTrigger expects NCHW images")
        out = x.copy()
        rows, cols = self._slices()
        patch = out[:, :, rows, cols]
        patch[:, :, self.mask] = self.value
        out[:, :, rows, cols] = patch
        return out

    def split(self, num_parts: int) -> list["PixelPatchTrigger"]:
        """Split the patch into ``num_parts`` disjoint sub-triggers (for DBA)."""
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        coords = np.argwhere(self.mask)
        parts: list[PixelPatchTrigger] = []
        chunks = np.array_split(coords, num_parts)
        for chunk in chunks:
            sub_mask = np.zeros_like(self.mask)
            for r, c in chunk:
                sub_mask[r, c] = True
            parts.append(
                PixelPatchTrigger(
                    self.image_size,
                    self.patch_size,
                    self.value,
                    self.corner,
                    mask=sub_mask,
                )
            )
        return parts


@TRIGGERS.register("token")
class TokenTrigger(Trigger):
    """Fixed-term text trigger operating in embedding space.

    Inserting a fixed trigger token into a mean-pooled bag-of-embeddings
    sample is equivalent to adding the token's (scaled) embedding vector to
    the pooled feature, which is exactly what this trigger does.
    """

    def __init__(self, trigger_embedding: np.ndarray, scale: float = 1.0) -> None:
        trigger_embedding = np.asarray(trigger_embedding, dtype=np.float64)
        if trigger_embedding.ndim != 1:
            raise ValueError("trigger_embedding must be a 1-D vector")
        self.trigger_embedding = trigger_embedding
        self.scale = scale

    def apply(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.trigger_embedding.shape[0]:
            raise ValueError("feature dimension mismatch with the trigger embedding")
        return x + self.scale * self.trigger_embedding


def poison_dataset(
    data: Dataset,
    trigger: Trigger,
    target_class: int,
    poison_fraction: float = 1.0,
    rng: np.random.Generator | None = None,
    keep_clean: bool = True,
) -> Dataset:
    """Build a Trojaned dataset from clean data.

    A fraction of the samples gets the trigger applied and its labels rewritten
    to ``target_class``.  With ``keep_clean`` the clean samples are retained so
    the result is ``D ∪ D_Troj`` (the mixture used to train the Trojaned model
    X in Eq. 1 of the paper); without it only the poisoned samples are kept.
    """
    if not 0.0 < poison_fraction <= 1.0:
        raise ValueError("poison_fraction must be in (0, 1]")
    if len(data) == 0:
        return data
    rng = rng or np.random.default_rng(0)
    n_poison = max(1, int(round(poison_fraction * len(data))))
    idx = rng.choice(len(data), size=n_poison, replace=False)
    poisoned_x = trigger.apply(data.x[idx])
    poisoned_y = np.full(n_poison, target_class, dtype=np.int64)
    if keep_clean:
        x = np.concatenate([data.x, poisoned_x])
        y = np.concatenate([data.y, poisoned_y])
    else:
        x, y = poisoned_x, poisoned_y
    return Dataset(x, y)
